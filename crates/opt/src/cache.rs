//! Hash-consed NPN-canonical cut cache.
//!
//! Refactor and rewrite spend most of their resynthesis time in
//! `TruthTable -> irredundant SOP -> factored form`, and real circuits
//! present the same handful of truth-table classes thousands of times —
//! usually under different input orderings, input polarities, or output
//! polarity.  This module collapses those presentations into one cache entry:
//!
//! 1. [`semi_canonicalize`] maps a truth table to an NPN *semi*-canonical
//!    representative (output polarity, per-variable phases, and a variable
//!    permutation are normalized by cofactor-count heuristics, ABC-style;
//!    ties are left unresolved, so the class split is coarser than true NPN
//!    but the mapping is cheap and deterministic).
//! 2. [`CutCache`] memoizes `factor_truth_table` of the representative and
//!    replays the recorded inverse transform onto the factored form
//!    ([`NpnTransform::decanonicalize`] — a literal remap plus a De Morgan
//!    push-down, which preserves gate count exactly).
//!
//! # Determinism contract
//!
//! [`CutCache::factor`] is a pure function of the truth table: canonicalize,
//! factor the representative, undo the transform.  The cache only memoizes
//! the middle step, whose output is itself a pure function of the
//! representative — so cache-enabled and cache-disabled runs produce
//! node-for-node identical AIGs by construction (enforced by twin tests in
//! `elf-core`), and a cache shared across concurrently-served jobs cannot
//! leak one job's timing into another's result.  A deliberate non-feature:
//! the cache stores no "no gain" verdicts — whether a factored form wins is
//! decided against the *local* MFFC of each commit site, so a class-level
//! verdict would change results depending on which site populated the entry.
//!
//! The canonical step means plain (uncached) operators also factor the
//! representative rather than the raw table.  Both are functionally
//! identical implementations of the cut; only which of several same-gain
//! implementations gets built changes, and it changes for every flow
//! uniformly — all twin suites compare within one code version.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use elf_sop::{factor_truth_table, FactoredForm, TruthTable};

/// Sizing/enable knob for the [`CutCache`] (plumbed through `ElfOptions` and
/// `ServeConfig`; `Copy` so those configs stay `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutCacheConfig {
    /// Whether lookups are memoized at all.  Disabled caches still
    /// canonicalize (the uniform path is what keeps on/off bit-identical);
    /// they just never store or share anything.
    pub enabled: bool,
    /// Maximum number of canonical classes retained.  Once full the cache
    /// stops inserting (no eviction: deterministic and contention-free; the
    /// hot classes of a workload are the ones seen first and most often).
    pub capacity: usize,
}

impl Default for CutCacheConfig {
    fn default() -> Self {
        CutCacheConfig {
            enabled: true,
            capacity: 1 << 16,
        }
    }
}

impl CutCacheConfig {
    /// A configuration with memoization turned off.
    pub fn disabled() -> Self {
        CutCacheConfig {
            enabled: false,
            capacity: 0,
        }
    }
}

/// The NPN transform recorded by [`semi_canonicalize`]: how to get from the
/// canonical representative back to the original function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NpnTransform {
    /// `placement[v]` is the canonical position of original variable `v`.
    placement: Vec<usize>,
    /// Whether original variable `v` was complemented.
    phase: Vec<bool>,
    /// Whether the output was complemented.
    output_negated: bool,
}

impl NpnTransform {
    /// Whether the output polarity was flipped by canonicalization.
    pub fn output_negated(&self) -> bool {
        self.output_negated
    }

    /// Rewrites a factored form of the canonical representative into a
    /// factored form of the original function: literals are remapped to the
    /// original variable (XOR-ing the phase back in), and an output
    /// complement is pushed down with De Morgan (And <-> Or, literals
    /// negated), which keeps [`FactoredForm::num_gates`] unchanged.
    pub fn decanonicalize(&self, expr: &FactoredForm) -> FactoredForm {
        // original[j] = the original variable sitting at canonical position j.
        let mut original = vec![0usize; self.placement.len()];
        for (v, &j) in self.placement.iter().enumerate() {
            original[j] = v;
        }
        self.remap(expr, &original, self.output_negated)
    }

    fn remap(&self, expr: &FactoredForm, original: &[usize], negate: bool) -> FactoredForm {
        match expr {
            FactoredForm::Const(value) => FactoredForm::Const(*value != negate),
            FactoredForm::Literal { var, negated } => {
                let var = original[*var];
                FactoredForm::Literal {
                    var,
                    negated: *negated ^ self.phase[var] ^ negate,
                }
            }
            FactoredForm::And(a, b) => {
                let left = Box::new(self.remap(a, original, negate));
                let right = Box::new(self.remap(b, original, negate));
                if negate {
                    FactoredForm::Or(left, right)
                } else {
                    FactoredForm::And(left, right)
                }
            }
            FactoredForm::Or(a, b) => {
                let left = Box::new(self.remap(a, original, negate));
                let right = Box::new(self.remap(b, original, negate));
                if negate {
                    FactoredForm::And(left, right)
                } else {
                    FactoredForm::Or(left, right)
                }
            }
        }
    }
}

/// Maps a truth table to its NPN semi-canonical representative and the
/// transform that undoes the mapping.
///
/// The normalization is the classic cofactor-count heuristic:
///
/// * output polarity — keep the polarity with the smaller ON-set (words
///   compared lexicographically on a tie), so a function and its complement
///   share a representative;
/// * variable phases — each variable is flipped (in index order, on the
///   running table) until its positive cofactor has the smaller ON-set;
/// * variable order — variables are stable-sorted by positive-cofactor
///   ON-set size.
///
/// Ties left unresolved make this *semi*-canonical: two NPN-equivalent
/// functions may still map to different representatives, which costs cache
/// capacity but never correctness (the key *is* the representative).
pub fn semi_canonicalize(function: &TruthTable) -> (TruthTable, NpnTransform) {
    let ones = function.count_ones();
    let zeros = (1usize << function.num_vars()) - ones;
    match ones.cmp(&zeros) {
        std::cmp::Ordering::Greater => canonicalize_polarity(&!function, true),
        std::cmp::Ordering::Less => canonicalize_polarity(function, false),
        std::cmp::Ordering::Equal => {
            // Balanced ON-set: canonicalize both polarities fully and keep
            // the lexicographically smaller representative, so a function
            // and its complement still collapse onto one entry.
            let plain = canonicalize_polarity(function, false);
            let complemented = canonicalize_polarity(&!function, true);
            if complemented.0.words() < plain.0.words() {
                complemented
            } else {
                plain
            }
        }
    }
}

/// Phase + permutation normalization of one output polarity.
fn canonicalize_polarity(
    function: &TruthTable,
    output_negated: bool,
) -> (TruthTable, NpnTransform) {
    let num_vars = function.num_vars();
    let mut work = function.clone();
    let mut phase = vec![false; num_vars];
    for (var, flip) in phase.iter_mut().enumerate() {
        let positive = work.cofactor1(var).count_ones();
        let negative = work.cofactor0(var).count_ones();
        if positive > negative {
            work = work.flip_var(var);
            *flip = true;
        }
    }

    let mut order: Vec<usize> = (0..num_vars).collect();
    let keys: Vec<usize> = (0..num_vars)
        .map(|var| work.cofactor1(var).count_ones())
        .collect();
    order.sort_by_key(|&var| keys[var]);
    let mut placement = vec![0usize; num_vars];
    for (position, &var) in order.iter().enumerate() {
        placement[var] = position;
    }
    let canonical = work.permute_vars(&placement);
    (
        canonical,
        NpnTransform {
            placement,
            phase,
            output_negated,
        },
    )
}

/// Shared state behind every view of one cache (the map plus lifetime-global
/// counters; see [`CutCache::job_view`] for the per-view ones).
struct CacheShared {
    map: RwLock<HashMap<TruthTable, FactoredForm>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Per-view hit/miss counters (one fresh pair per [`CutCache::job_view`], so
/// a served job can report its own hit rate without racing on deltas of the
/// global counters).
#[derive(Default)]
struct ViewCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A handle to the NPN-canonical factored-form cache.
///
/// Cloning shares both the map and the view counters; [`CutCache::job_view`]
/// shares the map but issues fresh view counters.  The default handle is
/// disabled: it canonicalizes (so results never depend on whether a cache is
/// attached) but memoizes nothing.
///
/// # Examples
///
/// ```
/// use elf_opt::{CutCache, CutCacheConfig};
/// use elf_sop::{factor_truth_table, TruthTable};
///
/// let cache = CutCache::new(CutCacheConfig::default());
/// let f = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
/// let expr = cache.factor(&f);
/// assert_eq!(expr.to_truth_table(3), f);
/// // A permuted, phase-flipped presentation of the same class hits.
/// let g = f.permute_vars(&[2, 0, 1]).flip_var(1);
/// let _ = cache.factor(&g);
/// assert_eq!(cache.local_hits(), 1);
/// ```
#[derive(Clone, Default)]
pub struct CutCache {
    shared: Option<Arc<CacheShared>>,
    view: Arc<ViewCounters>,
}

impl fmt::Debug for CutCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CutCache")
            .field("enabled", &self.shared.is_some())
            .field("entries", &self.stats().entries)
            .field("local_hits", &self.local_hits())
            .field("local_misses", &self.local_misses())
            .finish()
    }
}

/// A point-in-time snapshot of a cache's global counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CutCacheStats {
    /// Whether this handle memoizes at all.
    pub enabled: bool,
    /// Canonical classes currently stored.
    pub entries: usize,
    /// Capacity the map stops growing at.
    pub capacity: usize,
    /// Lifetime lookup hits across every view of the cache.
    pub hits: u64,
    /// Lifetime lookup misses across every view of the cache.
    pub misses: u64,
}

impl CutCacheStats {
    /// Lifetime hit rate in `[0, 1]` (zero when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl CutCache {
    /// Creates a cache from its configuration (disabled configurations yield
    /// the memoization-free handle).
    pub fn new(config: CutCacheConfig) -> Self {
        if !config.enabled {
            return CutCache::default();
        }
        CutCache {
            shared: Some(Arc::new(CacheShared {
                map: RwLock::new(HashMap::new()),
                capacity: config.capacity,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            })),
            view: Arc::new(ViewCounters::default()),
        }
    }

    /// A handle that canonicalizes but never memoizes.
    pub fn disabled() -> Self {
        CutCache::default()
    }

    /// Whether this handle memoizes.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// A new handle onto the same map with fresh per-view counters: one per
    /// served job, so each job reports its own hit rate.
    pub fn job_view(&self) -> CutCache {
        CutCache {
            shared: self.shared.clone(),
            view: Arc::new(ViewCounters::default()),
        }
    }

    /// Factors `function`, memoizing by NPN semi-canonical class.
    ///
    /// Pure in its argument regardless of cache state (see the module docs),
    /// and functionally sound: the result's truth table equals `function`.
    pub fn factor(&self, function: &TruthTable) -> FactoredForm {
        let (canonical, transform) = semi_canonicalize(function);
        let canonical_expr = match &self.shared {
            None => factor_truth_table(&canonical),
            Some(shared) => shared.factor_canonical(&canonical, &self.view),
        };
        transform.decanonicalize(&canonical_expr)
    }

    /// Lookup hits recorded through this view (see [`CutCache::job_view`]).
    pub fn local_hits(&self) -> u64 {
        self.view.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses recorded through this view.
    pub fn local_misses(&self) -> u64 {
        self.view.misses.load(Ordering::Relaxed)
    }

    /// Folds the cache-lifetime counters into `registry` as gauges
    /// (`elf_cut_cache_entries`, plus lifetime hit/miss readings) — called
    /// at scrape time, complementing the per-run hit/miss *counters* the
    /// flow layer accumulates from its view deltas.
    pub fn fold_into(&self, registry: &elf_obs::metrics::Registry) {
        let stats = self.stats();
        registry
            .gauge(elf_obs::names::CUT_CACHE_ENTRIES)
            .set(stats.entries as i64);
        registry
            .gauge("elf_cut_cache_capacity")
            .set(stats.capacity as i64);
    }

    /// Snapshot of the cache-lifetime counters (all views combined).
    pub fn stats(&self) -> CutCacheStats {
        match &self.shared {
            None => CutCacheStats::default(),
            Some(shared) => CutCacheStats {
                enabled: true,
                entries: shared.map.read().map_or(0, |map| map.len()),
                capacity: shared.capacity,
                hits: shared.hits.load(Ordering::Relaxed),
                misses: shared.misses.load(Ordering::Relaxed),
            },
        }
    }
}

impl CacheShared {
    fn factor_canonical(&self, canonical: &TruthTable, view: &ViewCounters) -> FactoredForm {
        if let Ok(map) = self.map.read() {
            if let Some(expr) = map.get(canonical) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                view.hits.fetch_add(1, Ordering::Relaxed);
                return expr.clone();
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        view.misses.fetch_add(1, Ordering::Relaxed);
        let expr = factor_truth_table(canonical);
        if let Ok(mut map) = self.map.write() {
            // Two racing misses insert the same value (the entry is a pure
            // function of the key), so last-writer-wins is harmless.
            if map.len() < self.capacity {
                map.insert(canonical.clone(), expr.clone());
            }
        }
        expr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tables() -> Vec<TruthTable> {
        let mut tables = Vec::new();
        for num_vars in 1..=5usize {
            for salt in 0..6usize {
                tables.push(TruthTable::from_fn(num_vars, |m| {
                    (m.wrapping_mul(2654435761).wrapping_add(salt * 97) >> 2) & 3 == 1
                }));
            }
        }
        tables.push(TruthTable::zeros(3));
        tables.push(TruthTable::ones(3));
        tables.push(TruthTable::var(1, 4));
        tables
    }

    #[test]
    fn decanonicalized_factoring_reproduces_the_function() {
        for function in sample_tables() {
            let (canonical, transform) = semi_canonicalize(&function);
            let expr = transform.decanonicalize(&factor_truth_table(&canonical));
            assert_eq!(
                expr.to_truth_table(function.num_vars()),
                function,
                "round-trip failed for {function}"
            );
        }
    }

    #[test]
    fn canonicalization_collapses_npn_presentations() {
        let f = TruthTable::from_fn(4, |m| m.count_ones() >= 3 || m == 0b0101);
        let (canonical, _) = semi_canonicalize(&f);
        // Output complement, variable phases and variable order all collapse
        // onto the same representative.
        for presentation in [
            !&f,
            f.flip_var(0),
            f.flip_var(2).flip_var(3),
            f.permute_vars(&[3, 2, 1, 0]),
            !&f.permute_vars(&[1, 0, 3, 2]).flip_var(1),
        ] {
            let (other, transform) = semi_canonicalize(&presentation);
            assert_eq!(other, canonical, "presentation {presentation} diverged");
            let expr = transform.decanonicalize(&factor_truth_table(&other));
            assert_eq!(expr.to_truth_table(4), presentation);
        }
    }

    #[test]
    fn canonicalization_is_idempotent() {
        for function in sample_tables() {
            let (canonical, _) = semi_canonicalize(&function);
            let num_vars = canonical.num_vars();
            let ones = canonical.count_ones();
            assert!(
                2 * ones <= 1 << num_vars,
                "representative keeps the smaller ON-set"
            );
            // Exactly balanced ON-sets are semi-canonical ties (the winner
            // is picked lexicographically between fully-normalized
            // polarities); everything else must be a strict fixpoint.
            if 2 * ones < 1 << num_vars {
                let (again, transform) = semi_canonicalize(&canonical);
                assert_eq!(again, canonical, "representative must be a fixpoint");
                assert!(!transform.output_negated());
            }
        }
    }

    #[test]
    fn decanonicalization_preserves_gate_count() {
        for function in sample_tables() {
            let (canonical, transform) = semi_canonicalize(&function);
            let canonical_expr = factor_truth_table(&canonical);
            let expr = transform.decanonicalize(&canonical_expr);
            assert_eq!(expr.num_gates(), canonical_expr.num_gates());
            assert_eq!(expr.num_literals(), canonical_expr.num_literals());
            assert_eq!(expr.depth(), canonical_expr.depth());
        }
    }

    #[test]
    fn cache_on_and_off_agree_exactly() {
        let cached = CutCache::new(CutCacheConfig::default());
        let uncached = CutCache::disabled();
        for function in sample_tables() {
            // Factor twice through the cache so the second pass replays a
            // stored entry; all three answers must be identical.
            let first = cached.factor(&function);
            let second = cached.factor(&function);
            let bare = uncached.factor(&function);
            assert_eq!(first, second);
            assert_eq!(first, bare, "cache changed the result for {function}");
        }
        assert!(cached.local_hits() > 0);
        assert_eq!(uncached.stats(), CutCacheStats::default());
    }

    #[test]
    fn views_share_the_map_but_not_the_counters() {
        let cache = CutCache::new(CutCacheConfig::default());
        let f = TruthTable::from_fn(3, |m| m % 3 == 1);
        let _ = cache.factor(&f);
        let view = cache.job_view();
        let _ = view.factor(&f);
        assert_eq!(view.local_hits(), 1, "the view should hit the warm map");
        assert_eq!(view.local_misses(), 0);
        assert_eq!(cache.local_hits(), 0, "parent counters are separate");
        assert_eq!(cache.stats().hits, 1, "global counters aggregate views");
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn complement_and_permutation_presentations_hit_the_cache() {
        let cache = CutCache::new(CutCacheConfig::default());
        let f = TruthTable::from_fn(4, |m| (m & 0b11) == 0b10 || m.count_ones() == 4);
        let _ = cache.factor(&f);
        assert_eq!(cache.local_misses(), 1);
        let _ = cache.factor(&!&f);
        let _ = cache.factor(&f.permute_vars(&[2, 3, 0, 1]));
        assert_eq!(cache.local_hits(), 2);
        assert_eq!(cache.local_misses(), 1);
    }

    #[test]
    fn capacity_zero_never_stores() {
        let cache = CutCache::new(CutCacheConfig {
            enabled: true,
            capacity: 0,
        });
        let f = TruthTable::var(0, 3);
        let _ = cache.factor(&f);
        let _ = cache.factor(&f);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.local_misses(), 2, "nothing stored, nothing hit");
    }
}
