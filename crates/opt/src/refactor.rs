//! The refactor operator (Mishchenko et al.), the baseline that ELF accelerates.
//!
//! For every AND node the operator forms a reconvergence-driven cut, converts
//! the cut function to an irredundant SOP, factors it algebraically, and
//! commits the factored implementation when it removes more nodes than it
//! adds (paper Algorithm 1).  The per-node entry point [`Refactor::refactor_node`]
//! is exposed so that ELF can drive its own pruned iteration (Algorithm 2).

use std::time::Instant;

use elf_aig::{Aig, Cut, CutFeatures, CutParams, Lit, NodeId};

use crate::build::{build_expr, count_new_nodes, cut_truth_table};
use crate::cache::CutCache;
use crate::operator::{
    collect_cut_features, AigOperator, LabeledCut, NodeOutcome, OpStats, PrunableOperator,
};

/// Parameters of the refactor operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefactorParams {
    /// Reconvergence-driven cut parameters (leaf bound, expansion cost bound).
    pub cut: CutParams,
    /// Accept changes with zero gain as well as positive gain (ABC's `-z`).
    pub zero_gain: bool,
    /// Reject candidates whose estimated root level exceeds the current root
    /// level (ABC's `-l`, used by the paper's experiments).
    pub preserve_level: bool,
    /// Also factor the complement of the cut function and keep the better of
    /// the two implementations.
    pub try_complement: bool,
    /// Cuts with fewer leaves than this are not resynthesized (they cannot
    /// yield a gain).
    pub min_leaves: usize,
}

impl Default for RefactorParams {
    fn default() -> Self {
        RefactorParams {
            cut: CutParams::default(),
            zero_gain: false,
            preserve_level: true,
            try_complement: true,
            min_leaves: 3,
        }
    }
}

impl RefactorParams {
    /// Parameters matching the paper's baseline invocation `refactor -l`.
    pub fn paper_baseline() -> Self {
        Self::default()
    }
}

/// Aggregate statistics of one refactor pass (baseline or pruned).
///
/// The refactor operator's statistics are exactly the shared
/// [`OpStats`] core used by every [`AigOperator`].
pub type RefactorStats = OpStats;

/// The refactor operator.
///
/// # Examples
///
/// ```
/// use elf_aig::Aig;
/// use elf_opt::{Refactor, RefactorParams};
///
/// let mut aig = Aig::new();
/// let inputs = aig.add_inputs(4);
/// // Redundant structure: (a & b) | (a & b & c & d) == a & b.
/// let ab = aig.and(inputs[0], inputs[1]);
/// let abcd = {
///     let cd = aig.and(inputs[2], inputs[3]);
///     aig.and(ab, cd)
/// };
/// let f = aig.or(ab, abcd);
/// aig.add_output(f);
///
/// let stats = Refactor::new(RefactorParams::default()).run(&mut aig);
/// assert!(stats.total_gain >= 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Refactor {
    params: RefactorParams,
    cache: CutCache,
}

impl Refactor {
    /// Creates a refactor operator with the given parameters.
    pub fn new(params: RefactorParams) -> Self {
        Refactor {
            params,
            cache: CutCache::disabled(),
        }
    }

    /// Returns the operator's parameters.
    pub fn params(&self) -> &RefactorParams {
        &self.params
    }

    /// The factored-form cache consulted by resynthesis (disabled by
    /// default; attach one via [`AigOperator::set_cut_cache`]).
    pub fn cut_cache(&self) -> &CutCache {
        &self.cache
    }

    /// Runs the baseline operator over every node of the graph (Algorithm 1).
    pub fn run(&self, aig: &mut Aig) -> RefactorStats {
        self.run_impl(aig, |_, _| true, None)
    }

    /// Runs the operator, recording a labeled sample for every visited cut.
    ///
    /// The labels reflect the baseline behaviour (every cut is resynthesized),
    /// so the recorded samples are exactly the training data described in the
    /// paper.
    pub fn run_recording(&self, aig: &mut Aig) -> (RefactorStats, Vec<LabeledCut>) {
        let mut samples = Vec::new();
        let stats = self.run_impl(aig, |_, _| true, Some(&mut samples));
        (stats, samples)
    }

    /// Runs the operator but consults `keep` before resynthesizing each cut:
    /// when `keep` returns `false` the cut is pruned (counted but not
    /// resynthesized).  This is the per-node filtering mode used by ablations;
    /// the ELF flow batches classification up front instead.
    pub fn run_with_filter(
        &self,
        aig: &mut Aig,
        mut keep: impl FnMut(NodeId, &CutFeatures) -> bool,
    ) -> RefactorStats {
        self.run_impl(aig, &mut keep, None)
    }

    fn run_impl(
        &self,
        aig: &mut Aig,
        mut keep: impl FnMut(NodeId, &CutFeatures) -> bool,
        mut samples: Option<&mut Vec<LabeledCut>>,
    ) -> RefactorStats {
        let start = Instant::now();
        let mut stats = RefactorStats::default();
        // Generation-stamped tokens guard against slot recycling: a commit at
        // an earlier target may free a later target's slot and re-issue it to
        // a brand-new node, which must not be processed from the stale list.
        let targets: Vec<_> = aig.and_ids().map(|id| aig.token(id)).collect();
        let mut cut = Cut::empty();
        for token in targets {
            let node = token.id();
            if !aig.token_is_current(token) || aig.refs(node) == 0 {
                continue;
            }
            stats.nodes_visited += 1;
            let outcome = self.refactor_node_with_cut(aig, node, &mut cut, &mut keep);
            stats.cuts_formed += 1;
            if outcome.resynthesized {
                stats.cuts_resynthesized += 1;
            } else {
                stats.cuts_pruned += 1;
            }
            if outcome.committed {
                stats.cuts_committed += 1;
                stats.total_gain += outcome.gain;
            }
            if let Some(samples) = samples.as_deref_mut() {
                samples.push(LabeledCut {
                    node,
                    features: outcome.features,
                    committed: outcome.committed,
                });
            }
        }
        stats.runtime = start.elapsed();
        stats
    }

    /// Collects the cut features of every live AND node without resynthesizing
    /// anything.  This is phase 1 of the ELF flow (batch feature collection).
    pub fn collect_features(&self, aig: &mut Aig) -> Vec<(NodeId, CutFeatures)> {
        collect_cut_features(aig, &self.params.cut)
    }

    /// Performs the full refactor step (cut, resynthesis, gain evaluation,
    /// commit) at a single node.
    pub fn refactor_node(&self, aig: &mut Aig, node: NodeId) -> NodeOutcome {
        let mut cut = Cut::empty();
        self.refactor_node_with_cut(aig, node, &mut cut, &mut |_, _| true)
    }

    fn refactor_node_with_cut(
        &self,
        aig: &mut Aig,
        node: NodeId,
        cut: &mut Cut,
        keep: &mut impl FnMut(NodeId, &CutFeatures) -> bool,
    ) -> NodeOutcome {
        debug_assert!(aig.is_and(node));
        aig.reconvergence_cut_into(node, &self.params.cut, cut);
        let features = aig.cut_features(cut);
        let mut outcome = NodeOutcome {
            node,
            features,
            resynthesized: false,
            committed: false,
            gain: 0,
        };
        if !keep(node, &features) {
            return outcome;
        }
        outcome.resynthesized = true;
        if let Some(gain) = self.resynthesize_cut(aig, node, cut) {
            outcome.committed = true;
            outcome.gain = gain;
        }
        outcome
    }

    /// Resynthesizes an already-computed cut and commits the winning
    /// implementation, returning `Some(achieved_gain)` on commit.
    fn resynthesize_cut(&self, aig: &mut Aig, node: NodeId, cut: &Cut) -> Option<i64> {
        if cut.num_leaves() < self.params.min_leaves {
            return None;
        }

        // Resynthesize: truth table -> ISOP -> factored form (both
        // polarities), memoized by NPN class through the cut cache (the
        // complement maps to the same class, so it is a guaranteed hit).
        let truth = cut_truth_table(aig, cut);
        let leaf_lits: Vec<Lit> = cut.leaves.iter().map(|&l| l.lit()).collect();
        let mut candidates = vec![(self.cache.factor(&truth), false)];
        if self.params.try_complement {
            candidates.push((self.cache.factor(&!&truth), true));
        }

        // Evaluate the gain of each candidate with the cut-bounded MFFC
        // temporarily dereferenced, exactly like ABC.  The MFFC is bounded by
        // the cut's leaves: the resynthesized implementation keeps using the
        // leaves, so logic below them can never be reclaimed by this commit.
        let saved = aig.deref_mffc_bounded(node, &cut.leaves) as i64;
        let root_level = aig.level(node);
        let mut best: Option<(usize, i64)> = None; // (candidate index, gain)
        for (index, (expr, _)) in candidates.iter().enumerate() {
            let cost = count_new_nodes(aig, expr, &leaf_lits, Some(node));
            if self.params.preserve_level && cost.level > root_level {
                continue;
            }
            let gain = saved - cost.new_nodes as i64;
            let better = match best {
                None => true,
                Some((best_index, best_gain)) => {
                    gain > best_gain
                        || (gain == best_gain
                            && expr.num_gates() < candidates[best_index].0.num_gates())
                }
            };
            if better {
                best = Some((index, gain));
            }
        }
        aig.ref_mffc_bounded(node, &cut.leaves);

        let (index, gain) = best?;
        let accept = gain > 0 || (self.params.zero_gain && gain >= 0);
        if !accept {
            return None;
        }

        // Build the winning implementation speculatively and commit it.
        let ands_before = aig.num_ands() as i64;
        let (expr, complemented) = &candidates[index];
        aig.begin_speculation();
        let mut new_lit = build_expr(aig, expr, &leaf_lits);
        if *complemented {
            new_lit = !new_lit;
        }
        if new_lit.node() == node || aig.cone_contains(new_lit.node(), node) {
            // Degenerate candidate: it reproduces (or depends on) the node
            // itself.  Drop the speculative nodes and keep the graph unchanged.
            aig.reject_speculation();
            return None;
        }
        aig.commit_speculation();
        #[cfg(debug_assertions)]
        crate::operator::debug_assert_commit_equivalence(aig, Self::NAME, node, new_lit);
        aig.replace(node, new_lit);
        Some(ands_before - aig.num_ands() as i64)
    }
}

impl AigOperator for Refactor {
    type Params = RefactorParams;
    type Stats = RefactorStats;

    const NAME: &'static str = "refactor";

    fn from_params(params: RefactorParams) -> Self {
        Refactor::new(params)
    }

    fn run(&self, aig: &mut Aig) -> RefactorStats {
        Refactor::run(self, aig)
    }

    fn apply_node(&self, aig: &mut Aig, node: NodeId) -> NodeOutcome {
        self.refactor_node(aig, node)
    }

    fn apply_node_fast(&self, aig: &mut Aig, node: NodeId) -> Option<i64> {
        // The resynthesis cut is still needed, but the feature extraction
        // (an O(cone x fanout) scan) is skipped on this path.
        let mut cut = Cut::empty();
        aig.reconvergence_cut_into(node, &self.params.cut, &mut cut);
        self.resynthesize_cut(aig, node, &cut)
    }

    fn set_cut_cache(&mut self, cache: CutCache) {
        self.cache = cache;
    }
}

impl PrunableOperator for Refactor {
    fn feature_cut_params(&self) -> CutParams {
        self.params.cut
    }

    fn run_recording(&self, aig: &mut Aig) -> (RefactorStats, Vec<LabeledCut>) {
        Refactor::run_recording(self, aig)
    }

    fn run_with_filter(
        &self,
        aig: &mut Aig,
        keep: &mut dyn FnMut(NodeId, &CutFeatures) -> bool,
    ) -> RefactorStats {
        self.run_impl(aig, |node, features| keep(node, features), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elf_aig::{check_equivalence, EquivalenceResult};

    /// (a & b) | (a & c): refactoring should rewrite it as a & (b | c),
    /// saving one node.
    fn shared_literal_circuit() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let t0 = aig.and(a, b);
        let t1 = aig.and(a, c);
        let f = aig.or(t0, t1);
        aig.add_output(f);
        aig
    }

    /// A circuit with heavy redundancy: f = (a & b) | (a & b & c & d).
    fn absorbed_term_circuit() -> Aig {
        let mut aig = Aig::new();
        let inputs = aig.add_inputs(4);
        let ab = aig.and(inputs[0], inputs[1]);
        let cd = aig.and(inputs[2], inputs[3]);
        let abcd = aig.and(ab, cd);
        let f = aig.or(ab, abcd);
        aig.add_output(f);
        aig
    }

    #[test]
    fn refactor_reduces_shared_literal_circuit() {
        let mut aig = shared_literal_circuit();
        let golden = aig.clone();
        let before = aig.num_reachable_ands();
        let stats = Refactor::new(RefactorParams::default()).run(&mut aig);
        let after = aig.num_reachable_ands();
        assert!(
            after < before,
            "expected node count to drop: {before} -> {after}"
        );
        assert!(stats.cuts_committed >= 1);
        assert_eq!(stats.total_gain, (before - after) as i64);
        assert_eq!(
            check_equivalence(&golden, &aig, 8, 1),
            EquivalenceResult::Equivalent
        );
        assert!(aig.check_invariants().is_empty());
    }

    #[test]
    fn refactor_absorbs_redundant_term() {
        let mut aig = absorbed_term_circuit();
        let golden = aig.clone();
        let stats = Refactor::new(RefactorParams::default()).run(&mut aig);
        assert!(stats.total_gain >= 1);
        assert_eq!(
            check_equivalence(&golden, &aig, 8, 2),
            EquivalenceResult::Equivalent
        );
        assert!(aig.check_invariants().is_empty());
    }

    #[test]
    fn refactor_is_idempotent_on_optimal_circuit() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.and(a, b);
        aig.add_output(f);
        let stats = Refactor::new(RefactorParams::default()).run(&mut aig);
        assert_eq!(stats.cuts_committed, 0);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn filter_prunes_resynthesis() {
        let mut aig = shared_literal_circuit();
        let stats =
            Refactor::new(RefactorParams::default()).run_with_filter(&mut aig, |_, _| false);
        assert_eq!(stats.cuts_resynthesized, 0);
        assert_eq!(stats.cuts_pruned, stats.cuts_formed);
        assert_eq!(stats.cuts_committed, 0);
        // Nothing changed.
        assert_eq!(aig.num_ands(), 3);
    }

    #[test]
    fn recording_produces_one_sample_per_cut() {
        let mut aig = absorbed_term_circuit();
        let (stats, samples) = Refactor::new(RefactorParams::default()).run_recording(&mut aig);
        assert_eq!(samples.len(), stats.cuts_formed);
        let committed = samples.iter().filter(|s| s.committed).count();
        assert_eq!(committed, stats.cuts_committed);
        assert!(samples.iter().all(|s| s.features.leaves >= 2.0));
    }

    #[test]
    fn collect_features_covers_all_live_nodes() {
        let mut aig = absorbed_term_circuit();
        let features = Refactor::default().collect_features(&mut aig);
        assert_eq!(features.len(), aig.num_reachable_ands());
    }

    #[test]
    fn constant_function_is_collapsed() {
        // f = (a & !a) | (b & !b) is constant false but built redundantly.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let t0 = aig.and(a, !a); // folds to constant immediately
        let t1 = aig.and(b, !b);
        let f = aig.or(t0, t1);
        aig.add_output(f);
        // The AIG constant-folds these at construction time already.
        assert_eq!(aig.num_ands(), 0);
        assert_eq!(f, elf_aig::Lit::FALSE);

        // A non-trivially constant function: f = a & b & !(a & b).
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.and(a, b);
        let g = aig.and(ab, !ab);
        assert_eq!(g, elf_aig::Lit::FALSE);
        let _ = aig;
    }

    #[test]
    fn commit_rate_and_prune_rate() {
        let stats = RefactorStats {
            cuts_formed: 100,
            cuts_committed: 2,
            cuts_pruned: 80,
            ..Default::default()
        };
        assert!((stats.commit_rate() - 0.02).abs() < 1e-9);
        assert!((stats.prune_rate() - 0.8).abs() < 1e-9);
        assert_eq!(RefactorStats::default().commit_rate(), 0.0);
    }

    #[test]
    fn gain_matches_node_count_change_on_larger_circuit() {
        // Build a chain of redundant or-of-and structures.
        let mut aig = Aig::new();
        let inputs = aig.add_inputs(8);
        let mut acc = inputs[0];
        for w in inputs.windows(3) {
            let t0 = aig.and(w[0], w[1]);
            let t1 = aig.and(w[0], w[2]);
            let or = aig.or(t0, t1);
            acc = aig.and(acc, or);
        }
        aig.add_output(acc);
        let golden = aig.clone();
        let before = aig.num_reachable_ands() as i64;
        let stats = Refactor::new(RefactorParams::default()).run(&mut aig);
        let after = aig.num_reachable_ands() as i64;
        assert_eq!(stats.total_gain, before - after);
        assert_eq!(
            check_equivalence(&golden, &aig, 16, 3),
            EquivalenceResult::Equivalent
        );
        assert!(aig.check_invariants().is_empty());
    }
}
