//! Criterion micro-benchmarks for the logic-optimization operators: the cost
//! of the per-cut pipeline stages and of whole baseline / ELF passes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use elf_circuits::epfl::{arithmetic_circuit, Scale};
use elf_core::{circuit_dataset, ElfClassifier, ElfConfig, ElfRefactor};
use elf_nn::TrainConfig;
use elf_opt::{cut_truth_table, Refactor, RefactorParams, Resubstitution, Rewrite};
use elf_sop::factor_truth_table;

fn trained_classifier() -> ElfClassifier {
    let circuit = arithmetic_circuit("square", Scale::Tiny);
    let data = circuit_dataset(&circuit, &RefactorParams::default());
    let (classifier, _) = ElfClassifier::fit(
        &data,
        &TrainConfig {
            epochs: 5,
            ..Default::default()
        },
        3,
    );
    classifier
}

/// Per-cut pipeline stages: cut computation, feature extraction, resynthesis.
fn bench_cut_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("cut_pipeline");
    group.sample_size(30);
    let mut aig = arithmetic_circuit("multiplier", Scale::Tiny);
    let params = elf_aig::CutParams::default();
    let roots: Vec<_> = aig.and_ids().collect();
    let mid = roots[roots.len() / 2];

    group.bench_function("reconvergence_cut", |b| {
        b.iter(|| std::hint::black_box(aig.reconvergence_cut(mid, &params)));
    });
    let mut reusable = elf_aig::Cut::empty();
    group.bench_function("reconvergence_cut_into", |b| {
        b.iter(|| {
            aig.reconvergence_cut_into(mid, &params, &mut reusable);
            std::hint::black_box(reusable.root)
        });
    });
    let cut = aig.reconvergence_cut(mid, &params);
    group.bench_function("cut_features", |b| {
        b.iter(|| std::hint::black_box(aig.cut_features(&cut)));
    });
    group.bench_function("truth_table", |b| {
        b.iter(|| std::hint::black_box(cut_truth_table(&aig, &cut)));
    });
    let truth = cut_truth_table(&aig, &cut);
    group.bench_function("isop_and_factor", |b| {
        b.iter(|| std::hint::black_box(factor_truth_table(&truth)));
    });
    group.finish();
}

/// Whole-pass comparison: baseline refactor vs ELF, plus the other operators.
fn bench_operator_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("operator_passes");
    group.sample_size(10);
    let circuit = arithmetic_circuit("multiplier", Scale::Tiny);
    let classifier = trained_classifier();

    group.bench_function("refactor_baseline", |b| {
        b.iter_batched(
            || circuit.clone(),
            |mut aig| std::hint::black_box(Refactor::new(RefactorParams::default()).run(&mut aig)),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("elf_refactor", |b| {
        let elf = ElfRefactor::new(classifier.clone(), ElfConfig::default());
        b.iter_batched(
            || circuit.clone(),
            |mut aig| std::hint::black_box(elf.run(&mut aig)),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("rewrite", |b| {
        b.iter_batched(
            || circuit.clone(),
            |mut aig| std::hint::black_box(Rewrite::default().run(&mut aig)),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("resubstitution", |b| {
        b.iter_batched(
            || circuit.clone(),
            |mut aig| std::hint::black_box(Resubstitution::default().run(&mut aig)),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_cut_pipeline, bench_operator_passes);
criterion_main!(benches);
