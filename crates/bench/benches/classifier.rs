//! Criterion benchmarks for the classifier: batched vs per-cut inference and
//! feature collection, quantifying the paper's claim that inference must be
//! far cheaper than resynthesis.

use criterion::{criterion_group, criterion_main, Criterion};
use elf_circuits::epfl::{arithmetic_circuit, Scale};
use elf_core::{circuit_dataset, ElfClassifier};
use elf_nn::TrainConfig;
use elf_opt::{Refactor, RefactorParams};

fn setup() -> (ElfClassifier, Vec<[f32; 6]>) {
    let circuit = arithmetic_circuit("square", Scale::Tiny);
    let data = circuit_dataset(&circuit, &RefactorParams::default());
    let (classifier, _) = ElfClassifier::fit(
        &data,
        &TrainConfig {
            epochs: 5,
            ..Default::default()
        },
        9,
    );
    let mut target = arithmetic_circuit("multiplier", Scale::Tiny);
    let features: Vec<[f32; 6]> = Refactor::new(RefactorParams::default())
        .collect_features(&mut target)
        .into_iter()
        .map(|(_, f)| f.to_array())
        .collect();
    (classifier, features)
}

fn bench_inference(c: &mut Criterion) {
    let (classifier, features) = setup();
    let mut group = c.benchmark_group("classifier");
    group.sample_size(30);

    group.bench_function("batched_inference_all_cuts", |b| {
        b.iter(|| std::hint::black_box(classifier.classify_batch(&features)));
    });
    group.bench_function("batched_inference_self_normalized", |b| {
        b.iter(|| std::hint::black_box(classifier.classify_batch_self_normalized(&features)));
    });
    group.bench_function("per_cut_inference", |b| {
        b.iter(|| {
            for feature in features.iter().take(64) {
                std::hint::black_box(classifier.classify_batch(std::slice::from_ref(feature)));
            }
        });
    });
    group.bench_function("feature_collection_whole_graph", |b| {
        let refactor = Refactor::new(RefactorParams::default());
        let circuit = arithmetic_circuit("multiplier", Scale::Tiny);
        b.iter(|| {
            let mut aig = circuit.clone();
            std::hint::black_box(refactor.collect_features(&mut aig))
        });
    });
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let circuit = arithmetic_circuit("square", Scale::Tiny);
    let data = circuit_dataset(&circuit, &RefactorParams::default());
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("fit_five_epochs", |b| {
        b.iter(|| {
            let (classifier, _) = ElfClassifier::fit(
                &data,
                &TrainConfig {
                    epochs: 5,
                    ..Default::default()
                },
                11,
            );
            std::hint::black_box(classifier)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_inference, bench_training);
criterion_main!(benches);
