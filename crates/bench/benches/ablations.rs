//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! decision threshold, batched vs per-node classification, level-preserving
//! refactoring, and cut size.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use elf_aig::CutParams;
use elf_circuits::epfl::{arithmetic_circuit, Scale};
use elf_core::{circuit_dataset, ElfClassifier, ElfConfig, ElfRefactor};
use elf_nn::TrainConfig;
use elf_opt::{Refactor, RefactorParams};

fn trained_classifier() -> ElfClassifier {
    let circuit = arithmetic_circuit("square", Scale::Tiny);
    let data = circuit_dataset(&circuit, &RefactorParams::default());
    let (classifier, _) = ElfClassifier::fit(
        &data,
        &TrainConfig {
            epochs: 5,
            ..Default::default()
        },
        21,
    );
    classifier
}

/// Decision-threshold sweep: lower thresholds keep more cuts (higher recall,
/// less speed-up), higher thresholds prune more aggressively.
fn bench_threshold(c: &mut Criterion) {
    let circuit = arithmetic_circuit("multiplier", Scale::Tiny);
    let classifier = trained_classifier();
    let mut group = c.benchmark_group("ablation_threshold");
    group.sample_size(10);
    for threshold in [0.1f32, 0.5, 0.9] {
        let mut tuned = classifier.clone();
        tuned.set_threshold(threshold);
        let elf = ElfRefactor::new(tuned, ElfConfig::default());
        group.bench_function(format!("threshold_{threshold}"), |b| {
            b.iter_batched(
                || circuit.clone(),
                |mut aig| std::hint::black_box(elf.run(&mut aig)),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// Batch-upfront classification (the paper's design) vs classifying each cut
/// as the iteration reaches it.
fn bench_batching(c: &mut Criterion) {
    let circuit = arithmetic_circuit("multiplier", Scale::Tiny);
    let classifier = trained_classifier();
    let mut group = c.benchmark_group("ablation_batching");
    group.sample_size(10);
    for (label, batch) in [("batched", true), ("per_node", false)] {
        let config = ElfConfig {
            batch_classification: batch,
            ..Default::default()
        };
        let elf = ElfRefactor::new(classifier.clone(), config);
        group.bench_function(label, |b| {
            b.iter_batched(
                || circuit.clone(),
                |mut aig| std::hint::black_box(elf.run(&mut aig)),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// Baseline refactor parameter ablations: level preservation and cut size.
fn bench_refactor_params(c: &mut Criterion) {
    let circuit = arithmetic_circuit("multiplier", Scale::Tiny);
    let mut group = c.benchmark_group("ablation_refactor_params");
    group.sample_size(10);
    let variants = [
        ("preserve_level", RefactorParams::default()),
        (
            "free_level",
            RefactorParams {
                preserve_level: false,
                ..Default::default()
            },
        ),
        (
            "cut8",
            RefactorParams {
                cut: CutParams::with_max_leaves(8),
                ..Default::default()
            },
        ),
        (
            "cut12",
            RefactorParams {
                cut: CutParams::with_max_leaves(12),
                ..Default::default()
            },
        ),
        (
            "zero_gain",
            RefactorParams {
                zero_gain: true,
                ..Default::default()
            },
        ),
    ];
    for (label, params) in variants {
        group.bench_function(label, |b| {
            b.iter_batched(
                || circuit.clone(),
                |mut aig| std::hint::black_box(Refactor::new(params).run(&mut aig)),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_threshold,
    bench_batching,
    bench_refactor_params
);
criterion_main!(benches);
