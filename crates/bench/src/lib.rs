//! # elf-bench
//!
//! Benchmark harness regenerating every table and figure of the ELF paper.
//!
//! Each binary in `src/bin/` corresponds to one experiment:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `table1` | Table I — EPFL arithmetic circuit statistics |
//! | `table2` | Table II — industrial circuit statistics |
//! | `table3` | Table III — ABC refactor vs ELF on the arithmetic suite |
//! | `table4` | Table IV — ABC refactor vs ELF applied twice |
//! | `table5` | Table V — ABC refactor vs ELF on industrial designs |
//! | `table6` | Table VI — large synthetic circuits |
//! | `table7` | Table VII — classifier quality on the arithmetic suite |
//! | `table8` | Table VIII — classifier quality on industrial designs |
//! | `fig1` | Figure 1 — redundancy / pruning flow percentages |
//! | `fig3` | Figure 3 — t-SNE embedding of the feature space (CSV) |
//! | `fig4` | Figure 4 — SHAP values per feature |
//! | `summary` | Headline numbers (average speed-up, worst-case area loss) |
//!
//! All binaries accept `--scale tiny|default|paper` (default: `default`) to
//! trade fidelity against runtime, `--epochs N` to cap training epochs, and
//! `--seed N`.  Absolute runtimes differ from the paper (the baseline is this
//! repository's own refactor implementation rather than ABC's C code), but
//! the relative behaviour — speed-up factors, near-zero area loss, recall and
//! accuracy ranges — is directly comparable.

use std::path::PathBuf;
use std::time::Duration;

use elf_circuits::epfl::{arithmetic_suite, Scale};
use elf_circuits::{industrial_suite, synthetic_suite};
use elf_core::experiment::{
    compare_on_circuit, quality_on_circuit, ComparisonRow, ExperimentConfig, QualityRow,
};
use elf_core::{circuit_dataset_standardized, BenchCircuit, ElfClassifier};
use elf_nn::{Dataset, TrainConfig};
use elf_par::Parallelism;

/// Command-line options shared by every harness binary.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// Benchmark size preset.
    pub scale: Scale,
    /// Scale factor applied to industrial/synthetic circuit sizes.
    pub industrial_scale: f64,
    /// Scale factor applied to the Table VI synthetic circuits.
    pub synthetic_scale: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Random seed.
    pub seed: u64,
    /// Worker-thread count (`--threads N`); `None` defers to `ELF_THREADS`.
    pub threads: Option<usize>,
    /// Path to persist machine-readable results to (`--json <path>`).
    pub json: Option<PathBuf>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            scale: Scale::Default,
            industrial_scale: 0.01,
            synthetic_scale: 0.002,
            epochs: 30,
            seed: 0xE1F,
            threads: None,
            json: None,
        }
    }
}

impl HarnessOptions {
    /// Parses options from the process arguments.  Unknown arguments are
    /// ignored so binaries can add their own flags.
    pub fn from_args() -> Self {
        let mut options = HarnessOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut index = 1;
        while index < args.len() {
            match args[index].as_str() {
                // Cheapest possible smoke-test configuration (used by CI).
                "--quick" => {
                    options.scale = Scale::Tiny;
                    options.industrial_scale = 0.002;
                    options.synthetic_scale = 0.0005;
                    options.epochs = 3;
                }
                "--scale" if index + 1 < args.len() => {
                    options.scale = match args[index + 1].as_str() {
                        "tiny" => Scale::Tiny,
                        "paper" | "full" => Scale::Paper,
                        _ => Scale::Default,
                    };
                    match options.scale {
                        Scale::Tiny => {
                            options.industrial_scale = 0.002;
                            options.synthetic_scale = 0.0005;
                            options.epochs = 10;
                        }
                        Scale::Default => {}
                        Scale::Paper => {
                            options.industrial_scale = 1.0;
                            options.synthetic_scale = 1.0;
                        }
                    }
                    index += 1;
                }
                "--epochs" if index + 1 < args.len() => {
                    options.epochs = args[index + 1].parse().unwrap_or(options.epochs);
                    index += 1;
                }
                "--seed" if index + 1 < args.len() => {
                    options.seed = args[index + 1].parse().unwrap_or(options.seed);
                    index += 1;
                }
                "--json" if index + 1 < args.len() => {
                    options.json = Some(PathBuf::from(&args[index + 1]));
                    index += 1;
                }
                "--threads" if index + 1 < args.len() => {
                    // `--threads 0` means sequential (same clamp as
                    // `Parallelism::threads`); only a non-numeric value falls
                    // back, matching `--epochs`/`--seed` leniency.
                    options.threads = args[index + 1]
                        .parse()
                        .ok()
                        .map(|n: usize| n.max(1))
                        .or(options.threads);
                    index += 1;
                }
                _ => {}
            }
            index += 1;
        }
        options
    }

    /// The worker-thread count implied by these options: the `--threads`
    /// flag when given, the `ELF_THREADS` environment variable otherwise.
    pub fn parallelism(&self) -> Parallelism {
        self.threads.map(Parallelism::threads).unwrap_or_default()
    }

    /// The experiment configuration implied by these options.
    pub fn experiment_config(&self, applications: usize) -> ExperimentConfig {
        ExperimentConfig {
            elf: elf_core::ElfConfig {
                parallelism: self.parallelism(),
                ..Default::default()
            },
            train: TrainConfig {
                epochs: self.epochs,
                // The generated workloads are more imbalanced than the EPFL
                // originals at reduced scale, so the harness trains with a
                // positive-class weight (the paper's loss ablation found
                // plain BCE sufficient on the original circuits).
                loss: elf_nn::Loss::WeightedBce { pos_weight: 20.0 },
                ..Default::default()
            },
            seed: self.seed,
            applications,
        }
    }

    /// Builds the EPFL-style arithmetic suite at the selected scale.
    pub fn epfl_circuits(&self) -> Vec<BenchCircuit> {
        arithmetic_suite(self.scale)
            .into_iter()
            .map(|(name, aig)| BenchCircuit::new(name, aig))
            .collect()
    }

    /// Builds the industrial-like suite at the selected scale.
    pub fn industrial_circuits(&self) -> Vec<BenchCircuit> {
        industrial_suite(self.industrial_scale, self.seed)
            .into_iter()
            .map(|(name, aig)| BenchCircuit::new(name, aig))
            .collect()
    }

    /// Builds the large synthetic suite at the selected scale.
    pub fn synthetic_circuits(&self) -> Vec<BenchCircuit> {
        synthetic_suite(self.synthetic_scale, self.seed)
            .into_iter()
            .map(|(name, aig)| BenchCircuit::new(name, aig))
            .collect()
    }
}

/// Leave-one-out experiment with per-circuit dataset caching (the datasets
/// are collected once instead of once per held-out circuit).
#[derive(Debug)]
pub struct CachedSuite {
    circuits: Vec<BenchCircuit>,
    datasets: Vec<Dataset>,
    config: ExperimentConfig,
}

impl CachedSuite {
    /// Collects the labelled cut dataset of every circuit once (one circuit
    /// per worker — the protocol-level fan-out on top of the per-node one).
    pub fn new(circuits: Vec<BenchCircuit>, config: ExperimentConfig) -> Self {
        let datasets = config.elf.parallelism.map(&circuits, |_, c| {
            circuit_dataset_standardized(&c.aig, &config.elf.refactor)
        });
        CachedSuite {
            circuits,
            datasets,
            config,
        }
    }

    /// The circuits of the suite.
    pub fn circuits(&self) -> &[BenchCircuit] {
        &self.circuits
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Trains a classifier on every circuit except `held_out`.
    pub fn train_excluding(&self, held_out: usize) -> ElfClassifier {
        let mut data = Dataset::new();
        for (index, dataset) in self.datasets.iter().enumerate() {
            if index != held_out {
                data.extend_from(dataset);
            }
        }
        let (classifier, _) = ElfClassifier::fit(&data, &self.config.train, self.config.seed);
        classifier
    }

    /// Trains a classifier on every circuit of the suite.
    pub fn train_all(&self) -> ElfClassifier {
        let mut data = Dataset::new();
        for dataset in &self.datasets {
            data.extend_from(dataset);
        }
        let (classifier, _) = ElfClassifier::fit(&data, &self.config.train, self.config.seed);
        classifier
    }

    /// Leave-one-out comparison rows (Tables III/IV/V): every held-out
    /// circuit trains and compares independently, so the whole protocol fans
    /// out one held-out index per worker.  Training is seeded and the rows
    /// are gathered in circuit order, so the table is identical for every
    /// thread count (runtimes aside).
    pub fn comparison_rows(&self) -> Vec<ComparisonRow> {
        let inner = self.per_circuit_config();
        let indices: Vec<usize> = (0..self.circuits.len()).collect();
        self.config.elf.parallelism.map(&indices, |_, &held_out| {
            let classifier = self.train_excluding(held_out);
            compare_on_circuit(&self.circuits[held_out], &classifier, &inner)
        })
    }

    /// Leave-one-out quality rows (Tables VII/VIII), fanned out like
    /// [`CachedSuite::comparison_rows`].
    pub fn quality_rows(&self) -> Vec<QualityRow> {
        let inner = self.per_circuit_config();
        let indices: Vec<usize> = (0..self.circuits.len()).collect();
        self.config.elf.parallelism.map(&indices, |_, &held_out| {
            let classifier = self.train_excluding(held_out);
            quality_on_circuit(&self.circuits[held_out], &classifier, &inner)
        })
    }

    /// The configuration handed to each held-out circuit's run: when the
    /// protocol itself fans out (more than one circuit on a parallel knob),
    /// the inner pruned passes run sequential — both layers spawning `N`
    /// workers would put `N²` threads on `N` cores, degrading the very
    /// speed-up curve the harness measures.  Results are identical either
    /// way (the engine's determinism guarantee); only wall clock moves.
    fn per_circuit_config(&self) -> ExperimentConfig {
        let mut inner = self.config;
        if self.circuits.len() > 1 {
            inner.elf.parallelism = Parallelism::sequential();
        }
        inner
    }
}

fn millis(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

/// Minimal JSON value for the `--json` output mode (the container vendors no
/// serde; the harness only needs objects, arrays, strings and numbers).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A floating-point number (rendered with up to full precision; NaN and
    /// infinities render as `null`).
    Num(f64),
    /// An integer.
    Int(i64),
    /// A string (escaped on render).
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object members.
    pub fn field(key: &str, value: Json) -> (String, Json) {
        (key.to_string(), value)
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Num(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(x) => out.push_str(&format!("{x}")),
            Json::Bool(x) => out.push_str(if *x { "true" } else { "false" }),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone()).render_into(out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes `value` as JSON (plus a trailing newline) to `path`, creating
/// parent directories as needed.  Errors are reported, not fatal — a bench
/// run's printed results stay usable even if persisting them fails.
pub fn write_json_file(path: &std::path::Path, value: &Json) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(path, value.render() + "\n") {
        Ok(()) => println!("results written to {}", path.display()),
        Err(error) => eprintln!("failed to write {}: {error}", path.display()),
    }
}

/// Serializes comparison rows (Tables III–V layout) to JSON, including the
/// aggregate mean speed-up and worst-case And increase.
pub fn comparison_rows_json(bench: &str, options: &HarnessOptions, rows: &[ComparisonRow]) -> Json {
    let row_values: Vec<Json> = rows
        .iter()
        .map(|row| {
            Json::Obj(vec![
                Json::field("design", Json::Str(row.name.clone())),
                Json::field("nodes_before", Json::Int(row.nodes_before as i64)),
                Json::field("baseline_ms", Json::Num(millis(row.baseline_runtime))),
                Json::field("baseline_ands", Json::Int(row.baseline_ands as i64)),
                Json::field("baseline_level", Json::Int(row.baseline_level as i64)),
                Json::field("elf_ms", Json::Num(millis(row.elf_runtime))),
                Json::field("elf_ands", Json::Int(row.elf_ands as i64)),
                Json::field("elf_level", Json::Int(row.elf_level as i64)),
                Json::field("speedup", Json::Num(row.speedup())),
                Json::field("d_and_percent", Json::Num(row.and_difference_percent())),
                Json::field("d_level_percent", Json::Num(row.level_difference_percent())),
            ])
        })
        .collect();
    let mean_speedup = geometric_mean(rows.iter().map(ComparisonRow::speedup));
    let worst = rows
        .iter()
        .map(ComparisonRow::and_difference_percent)
        .fold(0.0, f64::max);
    Json::Obj(vec![
        Json::field("bench", Json::Str(bench.to_string())),
        Json::field("scale", Json::Str(format!("{:?}", options.scale))),
        Json::field("seed", Json::Int(options.seed as i64)),
        Json::field("threads", Json::Str(options.parallelism().to_string())),
        Json::field("rows", Json::Arr(row_values)),
        Json::field("mean_speedup", Json::Num(mean_speedup)),
        Json::field("worst_and_increase_percent", Json::Num(worst)),
    ])
}

/// Prints a baseline-vs-ELF comparison table in the layout of Tables III–V.
pub fn print_comparison_table(title: &str, rows: &[ComparisonRow]) {
    println!("{title}");
    println!(
        "{:<14} {:>9} | {:>12} {:>9} {:>7} | {:>12} {:>9} {:>7} | {:>8} {:>8} {:>8}",
        "Design",
        "Nodes",
        "base ms",
        "And",
        "Level",
        "ELF ms",
        "And",
        "Level",
        "Speedup",
        "dAnd%",
        "dLvl%"
    );
    for row in rows {
        println!(
            "{:<14} {:>9} | {:>12.2} {:>9} {:>7} | {:>12.2} {:>9} {:>7} | {:>7.2}x {:>+8.2} {:>+8.2}",
            row.name,
            row.nodes_before,
            millis(row.baseline_runtime),
            row.baseline_ands,
            row.baseline_level,
            millis(row.elf_runtime),
            row.elf_ands,
            row.elf_level,
            row.speedup(),
            row.and_difference_percent(),
            row.level_difference_percent(),
        );
    }
    let mean_speedup = geometric_mean(rows.iter().map(ComparisonRow::speedup));
    let worst = rows
        .iter()
        .map(ComparisonRow::and_difference_percent)
        .fold(0.0, f64::max);
    println!("-- mean speed-up {mean_speedup:.2}x, worst-case And increase {worst:+.2}% --");
}

/// Prints a classifier-quality table in the layout of Tables VII/VIII.
pub fn print_quality_table(title: &str, rows: &[QualityRow]) {
    println!("{title}");
    println!(
        "{:<14} {:>8} {:>10} {:>8} {:>9} {:>8} {:>8}",
        "Design", "Recall", "Accuracy", "TP", "TN", "FP", "FN"
    );
    for row in rows {
        let cm = row.confusion;
        println!(
            "{:<14} {:>7.0}% {:>9.0}% {:>8} {:>9} {:>8} {:>8}",
            row.name,
            cm.recall() * 100.0,
            cm.accuracy() * 100.0,
            cm.true_positives,
            cm.true_negatives,
            cm.false_positives,
            cm.false_negatives,
        );
    }
    let mean_recall: f64 =
        rows.iter().map(|r| r.confusion.recall()).sum::<f64>() / rows.len().max(1) as f64;
    let mean_accuracy: f64 =
        rows.iter().map(|r| r.confusion.accuracy()).sum::<f64>() / rows.len().max(1) as f64;
    println!(
        "-- mean recall {:.1}%, mean accuracy {:.1}% --",
        mean_recall * 100.0,
        mean_accuracy * 100.0
    );
}

/// Geometric mean of an iterator of positive numbers (1.0 when empty).
pub fn geometric_mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for value in values {
        sum += value.max(1e-12).ln();
        count += 1;
    }
    if count == 0 {
        1.0
    } else {
        (sum / count as f64).exp()
    }
}

/// Reference values reported by the paper, used to print the "paper vs
/// measured" comparison that EXPERIMENTS.md records.
pub mod paper {
    /// Average speed-up on the EPFL arithmetic circuits (Table III).
    pub const EPFL_MEAN_SPEEDUP: f64 = 5.29;
    /// Worst-case And increase on the EPFL circuits, percent (Table III).
    pub const EPFL_WORST_AND_INCREASE: f64 = 0.27;
    /// Average speed-up on the industrial designs (Table V).
    pub const INDUSTRIAL_MEAN_SPEEDUP: f64 = 2.80;
    /// Worst-case And increase on industrial designs, percent (Table V).
    pub const INDUSTRIAL_WORST_AND_INCREASE: f64 = 0.08;
    /// Average speed-up over all designs reported in the abstract.
    pub const OVERALL_MEAN_SPEEDUP: f64 = 3.9;
    /// Per-design speed-up range on the synthetic circuits (Table VI).
    pub const SYNTHETIC_SPEEDUPS: [(&str, f64); 3] =
        [("sixteen", 2.97), ("twenty", 2.87), ("twentythree", 2.85)];
    /// Average recall/accuracy on the EPFL circuits (Table VII).
    pub const EPFL_RECALL_RANGE: (f64, f64) = (0.76, 1.0);
    /// Average recall/accuracy on industrial designs (Table VIII).
    pub const INDUSTRIAL_RECALL_RANGE: (f64, f64) = (0.81, 1.0);
    /// Fraction of cuts the original refactor fails to improve (abstract).
    pub const FAILURE_RATE: f64 = 0.98;
    /// Range of cuts pruned by ELF (Figure 1).
    pub const PRUNED_RANGE: (f64, f64) = (0.694, 0.951);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean([4.0, 1.0].into_iter()) - 2.0).abs() < 1e-9);
        assert_eq!(geometric_mean(std::iter::empty()), 1.0);
    }

    #[test]
    fn options_default_and_config() {
        let options = HarnessOptions::default();
        let config = options.experiment_config(2);
        assert_eq!(config.applications, 2);
        assert_eq!(config.train.epochs, options.epochs);
    }

    #[test]
    fn cached_suite_trains_and_compares_on_tiny_circuits() {
        let options = HarnessOptions {
            scale: Scale::Tiny,
            epochs: 3,
            ..Default::default()
        };
        let circuits = options.epfl_circuits();
        let suite = CachedSuite::new(circuits, options.experiment_config(1));
        assert_eq!(suite.circuits().len(), 6);
        let classifier = suite.train_excluding(0);
        let row = compare_on_circuit(&suite.circuits()[0], &classifier, suite.config());
        assert!(row.nodes_before > 0);
        let quality = quality_on_circuit(&suite.circuits()[0], &classifier, suite.config());
        assert!(quality.confusion.total() > 0);
    }
}
