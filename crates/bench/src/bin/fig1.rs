//! Figure 1: the redundancy/pruning flow percentages.
//!
//! For every circuit of both suites this prints the fraction of cuts the
//! baseline refactor commits ("originally committed", 0.05 %-10.8 % in the
//! paper) and the fraction of cuts ELF prunes (69.4 %-95.1 % in the paper).

use elf_bench::{paper, CachedSuite, HarnessOptions};
use elf_core::experiment::compare_on_circuit;
use elf_core::ComparisonRow;

fn report(rows: &[(String, f64, f64)]) {
    println!(
        "{:<14} {:>22} {:>18}",
        "Design", "originally committed", "pruned by ELF"
    );
    for (name, committed, pruned) in rows {
        println!(
            "{:<14} {:>20.2} % {:>16.1} %",
            name,
            committed * 100.0,
            pruned * 100.0
        );
    }
}

fn flow_rows(suite: &CachedSuite) -> Vec<(String, f64, f64)> {
    (0..suite.circuits().len())
        .map(|held_out| {
            let classifier = suite.train_excluding(held_out);
            let row: ComparisonRow =
                compare_on_circuit(&suite.circuits()[held_out], &classifier, suite.config());
            (
                row.name.clone(),
                row.baseline_stats.commit_rate(),
                row.prune_rate(),
            )
        })
        .collect()
}

fn main() {
    let options = HarnessOptions::from_args();
    println!("Figure 1: redundancy in refactoring and the effect of ELF pruning");
    println!();

    println!("Arithmetic circuits (scale {:?}):", options.scale);
    let epfl = CachedSuite::new(options.epfl_circuits(), options.experiment_config(1));
    let epfl_rows = flow_rows(&epfl);
    report(&epfl_rows);
    println!();

    println!(
        "Industrial circuits (size scale {}):",
        options.industrial_scale
    );
    let industrial = CachedSuite::new(options.industrial_circuits(), options.experiment_config(1));
    let industrial_rows = flow_rows(&industrial);
    report(&industrial_rows);
    println!();

    let all: Vec<&(String, f64, f64)> = epfl_rows.iter().chain(&industrial_rows).collect();
    let mean_failure = 1.0 - all.iter().map(|(_, c, _)| c).sum::<f64>() / all.len().max(1) as f64;
    let mean_pruned = all.iter().map(|(_, _, p)| p).sum::<f64>() / all.len().max(1) as f64;
    println!(
        "Measured: {:.1} % of cuts fail to improve on average; ELF prunes {:.1} % of cuts.",
        mean_failure * 100.0,
        mean_pruned * 100.0
    );
    println!(
        "Paper:    {:.0} % of cuts fail on average; ELF prunes {:.1} %-{:.1} % of cuts.",
        paper::FAILURE_RATE * 100.0,
        paper::PRUNED_RANGE.0 * 100.0,
        paper::PRUNED_RANGE.1 * 100.0
    );
}
