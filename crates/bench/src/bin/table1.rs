//! Table I: statistics of the EPFL-style arithmetic circuits, including the
//! fraction of cuts the baseline refactor actually commits.
//!
//! The per-circuit statistics are independent, so the table fans out one
//! circuit per worker (`--threads N`, or the `ELF_THREADS` environment
//! variable).  `--sweep-threads 1,2,4` recomputes the same table at each
//! worker count and prints the wall-clock speed-up curve; the rows are
//! asserted identical across counts, so a nondeterministic merge fails the
//! run instead of silently corrupting the table.

use std::time::{Duration, Instant};

use elf_bench::HarnessOptions;
use elf_core::experiment::{circuit_stats, CircuitStatsRow};
use elf_core::{BenchCircuit, ExperimentConfig, Parallelism};
use elf_par::THREADS_ENV;

/// Computes every circuit's row at the given worker count.
fn stats_rows(
    circuits: &[BenchCircuit],
    config: &ExperimentConfig,
    parallelism: Parallelism,
) -> (Vec<CircuitStatsRow>, Duration) {
    let start = Instant::now();
    let rows = parallelism.map(circuits, |_, circuit| {
        circuit_stats(circuit, &config.elf.refactor)
    });
    (rows, start.elapsed())
}

fn print_rows(rows: &[CircuitStatsRow]) {
    println!(
        "{:<14} {:>9} {:>7} {:>6} {:>6} {:>18}",
        "Design", "And", "Level", "PIs", "POs", "Refactored"
    );
    for row in rows {
        println!(
            "{:<14} {:>9} {:>7} {:>6} {:>6} {:>10} ({:.2} %)",
            row.name,
            row.ands,
            row.level,
            row.inputs,
            row.outputs,
            row.refactored,
            row.refactored_fraction() * 100.0
        );
    }
}

/// Parses `--sweep-threads 1,2,4` from the raw arguments (harness options
/// ignore flags they do not know).
fn sweep_from_args() -> Option<Vec<usize>> {
    let args: Vec<String> = std::env::args().collect();
    let position = args.iter().position(|a| a == "--sweep-threads")?;
    // The flag was given, so from here on a malformed value is a hard error:
    // silently skipping the sweep would also skip its cross-thread
    // determinism assertion — the regression gate CI relies on.
    let die = |message: &str| -> ! {
        eprintln!("error: --sweep-threads {message} (expected e.g. `--sweep-threads 1,2,4`)");
        std::process::exit(2);
    };
    let Some(list) = args.get(position + 1) else {
        die("is missing its thread-count list");
    };
    let counts: Vec<usize> = list
        .split(',')
        .map(|s| match s.trim().parse() {
            Ok(n) if n >= 1 => n,
            _ => die(&format!("has invalid thread count `{s}`")),
        })
        .collect();
    Some(counts)
}

fn main() {
    let options = HarnessOptions::from_args();
    let config = options.experiment_config(1);
    let circuits = options.epfl_circuits();

    if let Some(counts) = sweep_from_args() {
        println!(
            "Table I thread sweep (scale {:?}, counts {:?})",
            options.scale, counts
        );
        let mut baseline: Option<(Duration, Vec<CircuitStatsRow>)> = None;
        for &threads in &counts {
            let (rows, elapsed) = stats_rows(&circuits, &config, Parallelism::threads(threads));
            match &baseline {
                None => {
                    println!(
                        "  {threads:>2} threads: {:>9.2} ms (baseline)",
                        millis(elapsed)
                    );
                    baseline = Some((elapsed, rows));
                }
                Some((base_time, base_rows)) => {
                    assert_eq!(
                        base_rows, &rows,
                        "thread count {threads} changed the table — nondeterministic merge"
                    );
                    let speedup = base_time.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
                    println!(
                        "  {threads:>2} threads: {:>9.2} ms ({speedup:.2}x vs {} thread{})",
                        millis(elapsed),
                        counts[0],
                        if counts[0] == 1 { "" } else { "s" }
                    );
                }
            }
        }
        let (_, rows) = baseline.expect("at least one sweep entry");
        println!();
        print_rows(&rows);
        return;
    }

    let parallelism = options.parallelism();
    let (rows, elapsed) = stats_rows(&circuits, &config, parallelism);
    println!(
        "Table I: arithmetic circuit statistics (scale {:?}, {parallelism}; \
         set --threads N or {THREADS_ENV})",
        options.scale
    );
    print_rows(&rows);
    println!();
    println!("Computed in {:.2} ms on {parallelism}.", millis(elapsed));
    println!("Paper reference: refactored fraction ranges from 0.50 % (div) to 7.34 % (sqrt);");
    println!("the reproduction should land in the same sub-10 % regime.");
}

fn millis(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}
