//! Table I: statistics of the EPFL-style arithmetic circuits, including the
//! fraction of cuts the baseline refactor actually commits.

use elf_bench::HarnessOptions;
use elf_core::experiment::circuit_stats;

fn main() {
    let options = HarnessOptions::from_args();
    let config = options.experiment_config(1);
    let circuits = options.epfl_circuits();
    println!(
        "Table I: arithmetic circuit statistics (scale {:?})",
        options.scale
    );
    println!(
        "{:<14} {:>9} {:>7} {:>6} {:>6} {:>18}",
        "Design", "And", "Level", "PIs", "POs", "Refactored"
    );
    for circuit in &circuits {
        let row = circuit_stats(circuit, &config.elf.refactor);
        println!(
            "{:<14} {:>9} {:>7} {:>6} {:>6} {:>10} ({:.2} %)",
            row.name,
            row.ands,
            row.level,
            row.inputs,
            row.outputs,
            row.refactored,
            row.refactored_fraction() * 100.0
        );
    }
    println!();
    println!("Paper reference: refactored fraction ranges from 0.50 % (div) to 7.34 % (sqrt);");
    println!("the reproduction should land in the same sub-10 % regime.");
}
