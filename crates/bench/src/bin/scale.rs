//! Scale proof for the struct-of-arrays AIG core: pushes a size-targeted
//! large circuit (1M+ AND nodes by default, ≈100k with `--quick`) through
//! cut enumeration and a full classifier-pruned `rf; rw; rs` flow, and
//! checks that free-list recycling keeps the arena proportional to the live
//! nodes across a second optimization pass.
//!
//! `--nodes N` overrides the gate target; `--json <path>` persists the
//! timings.  The final arena-density assertion (slots ≤ 1.1× live nodes
//! after re-optimizing an already-dense graph) is the bench's regression
//! gate: before slot recycling the arena only ever grew.

use std::time::Instant;

use elf_aig::CutParams;
use elf_bench::{write_json_file, HarnessOptions, Json};
use elf_circuits::{generate_large_circuit, scripted_circuit};
use elf_core::{circuit_dataset, ElfClassifier, ElfOptions, Flow};
use elf_nn::TrainConfig;
use elf_opt::{collect_cut_features, RefactorParams};

fn main() {
    let options = HarnessOptions::from_args();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Generation sheds ~40% of the gate budget as unreachable logic, so the
    // targets are set to land ≈100k (quick) / ≥1M (default) live ANDs.
    let mut target = if quick { 160_000 } else { 1_700_000 };
    if let Some(index) = args.iter().position(|a| a == "--nodes") {
        if let Some(value) = args.get(index + 1).and_then(|v| v.parse().ok()) {
            target = value;
        }
    }

    println!(
        "Scale bench: target {target} AND nodes, seed {}",
        options.seed
    );

    let gen_start = Instant::now();
    let mut aig = generate_large_circuit(target, options.seed);
    let gen_secs = gen_start.elapsed().as_secs_f64();
    println!(
        "generate: {:.2}s — {} ANDs, {} inputs, {} outputs, {} arena slots",
        gen_secs,
        aig.num_ands(),
        aig.num_inputs(),
        aig.num_outputs(),
        aig.num_slots()
    );

    // Cut enumeration over every live AND node (flow phase 1 at full width).
    let cut_start = Instant::now();
    let features = collect_cut_features(&mut aig, &CutParams::default());
    let cut_secs = cut_start.elapsed().as_secs_f64();
    println!(
        "cut enumeration: {:.2}s — {} cuts ({:.0} cuts/s)",
        cut_secs,
        features.len(),
        features.len() as f64 / cut_secs
    );
    drop(features);

    // A small scripted trainer is enough: the classifier's quality is not
    // under test here, only that the full pruned flow completes at scale.
    let trainer = scripted_circuit(
        6,
        &(0..40)
            .map(|i| (i as u8, 3 * i, 5 * i + 1, 7 * i))
            .collect::<Vec<_>>(),
    );
    let data = circuit_dataset(&trainer, &RefactorParams::default());
    let (classifier, _) = ElfClassifier::fit(
        &data,
        &TrainConfig {
            epochs: options.epochs.min(5),
            ..Default::default()
        },
        options.seed,
    );
    let elf_options = ElfOptions {
        parallelism: options.parallelism(),
        ..ElfOptions::default()
    };
    let flow = Flow::pruned_from_script("rf; rw; rs", &classifier, elf_options).expect("script");

    let ands_before = aig.num_ands();
    let flow_start = Instant::now();
    flow.run(&mut aig);
    let flow_secs = flow_start.elapsed().as_secs_f64();
    let ratio_after_flow = aig.num_slots() as f64 / aig.num_live_nodes() as f64;
    println!(
        "pruned rf; rw; rs: {:.2}s — {} -> {} ANDs, arena {} slots ({:.3}x live)",
        flow_secs,
        ands_before,
        aig.num_ands(),
        aig.num_slots(),
        ratio_after_flow
    );

    // Re-optimize an already-dense graph: with slot recycling the arena must
    // stay within a whisker of the live nodes; without it, every speculative
    // candidate and every commit would leak a slot.
    let mut dense = aig.restrash();
    let churn_start = Instant::now();
    flow.run(&mut dense);
    let churn_secs = churn_start.elapsed().as_secs_f64();
    let ratio = dense.num_slots() as f64 / dense.num_live_nodes() as f64;
    println!(
        "churn pass on dense graph: {:.2}s — {} ANDs, arena {} slots ({:.3}x live)",
        churn_secs,
        dense.num_ands(),
        dense.num_slots(),
        ratio
    );
    assert!(
        ratio <= 1.1,
        "arena grew to {ratio:.3}x the live nodes — slot recycling regressed"
    );

    if let Some(path) = &options.json {
        let value = Json::Obj(vec![
            Json::field("bench", Json::Str("scale".to_string())),
            Json::field("target_ands", Json::Int(target as i64)),
            Json::field("seed", Json::Int(options.seed as i64)),
            Json::field("generate_s", Json::Num(gen_secs)),
            Json::field("cut_enumeration_s", Json::Num(cut_secs)),
            Json::field("flow_s", Json::Num(flow_secs)),
            Json::field("churn_s", Json::Num(churn_secs)),
            Json::field("ands_before", Json::Int(ands_before as i64)),
            Json::field("ands_after", Json::Int(aig.num_ands() as i64)),
            Json::field("arena_slots", Json::Int(dense.num_slots() as i64)),
            Json::field("live_nodes", Json::Int(dense.num_live_nodes() as i64)),
            Json::field("arena_over_live", Json::Num(ratio)),
        ]);
        write_json_file(path, &value);
    }
    println!("scale bench passed (arena stays within 1.1x of live nodes).");
}
