//! Serving throughput: jobs/sec of the batching `ElfService` vs shard count
//! and batch size, comparing one-job-at-a-time `run_sync` against batched
//! (fire-then-drain) submission.
//!
//! Every configuration's results are checked identical via simulation
//! fingerprints before its throughput is reported — the bench doubles as a
//! serving-determinism smoke test.  `--quick` shrinks the workload for CI;
//! `--seed N` varies the circuits; `--threads N` sets the *within-job*
//! engine parallelism (shard counts are swept independently).
//!
//! Like the PR 4 thread-sweep bench: on a single-core container the sweep
//! measures oversubscription rather than the speed-up the shards deliver on
//! real multicore hardware; the batching win (fewer forward passes) is
//! visible regardless.
//!
//! `--overload` switches to the admission-control scenario instead: a tiny
//! queue bound under several concurrent clients, once per admission policy
//! (`Block`, `Reject`, `Timeout`).  Shed counts come from [`ServiceStats`],
//! and every *accepted* job is verified bit-identical to the offline flow —
//! load shedding changes which jobs run, never what an accepted job
//! computes.

use std::time::Instant;

use elf_aig::{simulation_signature, Aig};
use elf_bench::{write_json_file, HarnessOptions, Json};
use elf_circuits::scripted_circuit;
use elf_core::{circuit_dataset, ElfClassifier, ElfOptions, Flow};
use elf_nn::TrainConfig;
use elf_obs::metrics::Histogram;
use elf_opt::RefactorParams;
use elf_par::Parallelism;
use elf_serve::{AdmissionPolicy, ElfService, ServeConfig, ServeStats, ServiceStats};

/// Per-job latency accounting for one service run: admission wait and
/// worker service time, recorded into `elf-obs` log-bucketed histograms so
/// the bench reports tail quantiles (p50/p99), not just means.
#[derive(Clone)]
struct LatencyHists {
    queued: Histogram,
    service: Histogram,
}

impl LatencyHists {
    fn new() -> Self {
        LatencyHists {
            queued: Histogram::new(),
            service: Histogram::new(),
        }
    }

    fn record(&self, stats: &ServeStats) {
        self.queued.record_duration(stats.queued_time);
        self.service.record_duration(stats.service_time);
    }

    /// `(queued_p50, queued_p99, service_p50, service_p99)`, microseconds.
    fn quantiles_us(&self) -> (u64, u64, u64, u64) {
        let queued = self.queued.snapshot("queued_us".to_string());
        let service = self.service.snapshot("service_us".to_string());
        (queued.p50(), queued.p99(), service.p50(), service.p99())
    }

    fn json_fields(&self, prefix: &str) -> Vec<(String, Json)> {
        let (qp50, qp99, sp50, sp99) = self.quantiles_us();
        vec![
            Json::field(&format!("{prefix}queued_p50_us"), Json::Int(qp50 as i64)),
            Json::field(&format!("{prefix}queued_p99_us"), Json::Int(qp99 as i64)),
            Json::field(&format!("{prefix}service_p50_us"), Json::Int(sp50 as i64)),
            Json::field(&format!("{prefix}service_p99_us"), Json::Int(sp99 as i64)),
        ]
    }
}

/// One benchmark workload: scripted circuits paired with flow scripts.
fn workload(jobs: usize, gates: usize, seed: u64) -> Vec<(Aig, &'static str)> {
    let scripts = ["rf; rw; rs", "rf; rs", "rw; rf"];
    (0..jobs)
        .map(|job| {
            let salt = job as u64 * 31 + seed;
            let script: Vec<(u8, usize, usize, usize)> = (0..gates + job % 7)
                .map(|i| {
                    (
                        (i as u64 + salt) as u8,
                        3 * i + job,
                        5 * i + 1 + (salt as usize % 5),
                        7 * i,
                    )
                })
                .collect();
            (
                scripted_circuit(4 + job % 4, &script),
                scripts[job % scripts.len()],
            )
        })
        .collect()
}

/// Serves the whole workload with `run_sync`, one job at a time.
fn run_sync_all(
    service: &ElfService,
    jobs: &[(Aig, &'static str)],
    latency: &LatencyHists,
) -> (Vec<u64>, f64) {
    let mut handle = service.handle();
    let start = Instant::now();
    let signatures = jobs
        .iter()
        .map(|(aig, script)| {
            let response = handle.run_sync(aig.clone(), script).expect("run_sync");
            latency.record(&response.stats);
            simulation_signature(&response.aig, 8, 0xE1F)
        })
        .collect();
    (signatures, start.elapsed().as_secs_f64())
}

/// Serves the whole workload batched: submit everything, then drain.
fn run_batched_all(
    service: &ElfService,
    jobs: &[(Aig, &'static str)],
    latency: &LatencyHists,
) -> (Vec<u64>, f64) {
    let mut handle = service.handle();
    let start = Instant::now();
    let ids: Vec<_> = jobs
        .iter()
        .map(|(aig, script)| handle.submit(aig.clone(), script).expect("submit"))
        .collect();
    let mut signatures = vec![0u64; jobs.len()];
    while let Some(response) = handle.recv() {
        let index = ids
            .iter()
            .position(|id| *id == response.job_id)
            .expect("own job");
        latency.record(&response.stats);
        signatures[index] = simulation_signature(&response.aig, 8, 0xE1F);
    }
    (signatures, start.elapsed().as_secs_f64())
}

/// The offline per-job reference signatures: each job through
/// `Flow::pruned_from_script` with the serving options.
fn offline_signatures(
    jobs: &[(Aig, &'static str)],
    classifier: &ElfClassifier,
    options: ElfOptions,
) -> Vec<u64> {
    jobs.iter()
        .map(|(aig, script)| {
            let mut aig = aig.clone();
            Flow::pruned_from_script(script, classifier, options)
                .expect("script parses")
                .run(&mut aig);
            simulation_signature(&aig, 8, 0xE1F)
        })
        .collect()
}

/// The `--overload` scenario: saturate a tiny admission queue from several
/// clients under each policy; report throughput and shed counts, verify
/// every accepted job against the offline flow.
fn run_overload(options: &HarnessOptions, quick: bool, classifier: &ElfClassifier) {
    let (clients, per_client, gates) = if quick { (3, 12, 20) } else { (4, 30, 40) };
    let queue_bound = 4;
    let total = clients * per_client;
    let jobs = workload(total, gates, options.seed);

    println!(
        "Serve overload: {clients} clients x {per_client} jobs, queue bound {queue_bound}, \
         shards 2 (within-job engine: {})",
        options.parallelism()
    );
    println!(
        "{:<12} | {:>8} {:>8} {:>9} {:>9} | {:>10} {:>9}",
        "policy", "accepted", "rejected", "timed_out", "served", "wall ms", "jobs/s"
    );

    let policies: &[(&str, AdmissionPolicy)] = &[
        ("block", AdmissionPolicy::Block),
        ("reject", AdmissionPolicy::Reject),
        ("timeout(5)", AdmissionPolicy::Timeout(5)),
    ];
    let mut json_rows: Vec<Json> = Vec::new();
    let mut reference: Option<Vec<u64>> = None;
    for &(name, admission) in policies {
        let config = ServeConfig {
            shards: Parallelism::threads(2),
            queue_bound,
            admission,
            options: ElfOptions {
                parallelism: options.parallelism(),
                ..ElfOptions::default()
            },
            ..Default::default()
        };
        let service = ElfService::start(classifier.clone(), config);
        let offline = reference
            .get_or_insert_with(|| offline_signatures(&jobs, classifier, service.options()));

        let latency = LatencyHists::new();
        let start = Instant::now();
        let accepted: usize = std::thread::scope(|scope| {
            (0..clients)
                .map(|client| {
                    let mut handle = service.handle();
                    let jobs = &jobs;
                    let offline = &*offline;
                    let latency = latency.clone();
                    scope.spawn(move || {
                        let mut submitted = Vec::new();
                        for slot in 0..per_client {
                            let index = client * per_client + slot;
                            let (aig, script) = &jobs[index];
                            // Shed submissions hand the circuit back; the
                            // bench just drops it (a real client would
                            // retry or fail over).
                            if let Ok(id) = handle.submit(aig.clone(), script) {
                                submitted.push((index, id));
                            }
                        }
                        let mut delivered = 0usize;
                        while let Some(response) = handle.recv() {
                            assert!(!response.failed, "no served job may fail");
                            latency.record(&response.stats);
                            let (index, _) = submitted
                                .iter()
                                .find(|(_, id)| *id == response.job_id)
                                .expect("own job");
                            assert_eq!(
                                simulation_signature(&response.aig, 8, 0xE1F),
                                offline[*index],
                                "accepted job {index} diverged from the offline flow"
                            );
                            delivered += 1;
                        }
                        assert_eq!(delivered, submitted.len());
                        delivered
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|thread| thread.join().expect("client thread"))
                .sum()
        });
        let secs = start.elapsed().as_secs_f64();
        let stats = service.shutdown();

        assert_eq!(accepted as u64, stats.jobs_served);
        assert_eq!(accepted as u64 + stats.jobs_shed(), total as u64);
        if let AdmissionPolicy::Block = admission {
            assert_eq!(stats.jobs_shed(), 0, "Block must never shed");
        }

        let (queued_p50, queued_p99, service_p50, service_p99) = latency.quantiles_us();
        println!(
            "{:<12} | {:>8} {:>8} {:>9} {:>9} | {:>10.2} {:>9.1} | q p50/p99 {}/{} us, s p50/p99 {}/{} us",
            name,
            accepted,
            stats.jobs_rejected,
            stats.jobs_timed_out,
            stats.jobs_served,
            secs * 1e3,
            accepted as f64 / secs,
            queued_p50,
            queued_p99,
            service_p50,
            service_p99
        );
        let mut row = vec![
            Json::field("policy", Json::Str(name.to_string())),
            Json::field("submitted", Json::Int(total as i64)),
            Json::field("accepted", Json::Int(accepted as i64)),
            Json::field("rejected", Json::Int(stats.jobs_rejected as i64)),
            Json::field("timed_out", Json::Int(stats.jobs_timed_out as i64)),
            Json::field("served", Json::Int(stats.jobs_served as i64)),
            Json::field("wall_ms", Json::Num(secs * 1e3)),
            Json::field("jobs_per_sec", Json::Num(accepted as f64 / secs)),
        ];
        row.extend(latency.json_fields(""));
        json_rows.push(Json::Obj(row));
    }
    if let Some(path) = &options.json {
        let value = Json::Obj(vec![
            Json::field("bench", Json::Str("serve_overload".to_string())),
            Json::field("clients", Json::Int(clients as i64)),
            Json::field("jobs_per_client", Json::Int(per_client as i64)),
            Json::field("queue_bound", Json::Int(queue_bound as i64)),
            Json::field("seed", Json::Int(options.seed as i64)),
            Json::field(
                "engine_parallelism",
                Json::Str(options.parallelism().to_string()),
            ),
            Json::field("rows", Json::Arr(json_rows)),
            Json::field("accepted_jobs_verified_offline", Json::Bool(true)),
        ]);
        write_json_file(path, &value);
    }
    println!();
    println!(
        "accepted + shed == submitted for every policy; every accepted job verified \
         bit-identical to the offline pruned flow."
    );
}

fn main() {
    let options = HarnessOptions::from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    let (num_jobs, gates) = if quick { (18, 24) } else { (60, 48) };
    let shard_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let batch_sizes: &[usize] = if quick { &[1, 256] } else { &[1, 64, 1024] };

    // Train once; the service amortizes the classifier over every request.
    let trainer = scripted_circuit(
        6,
        &(0..40)
            .map(|i| (i as u8, 3 * i, 5 * i + 1, 7 * i))
            .collect::<Vec<_>>(),
    );
    let data = circuit_dataset(&trainer, &RefactorParams::default());
    let (classifier, _) = ElfClassifier::fit(
        &data,
        &TrainConfig {
            epochs: options.epochs.min(5),
            ..Default::default()
        },
        options.seed,
    );

    if std::env::args().any(|a| a == "--overload") {
        run_overload(&options, quick, &classifier);
        return;
    }

    let jobs = workload(num_jobs, gates, options.seed);
    println!(
        "Serve throughput: {num_jobs} jobs, shard counts {shard_counts:?}, batch sizes {batch_sizes:?} (within-job engine: {})",
        options.parallelism()
    );
    println!(
        "{:<8} {:>10} | {:>12} {:>9} | {:>12} {:>9} {:>10} {:>10} | {:>8}",
        "shards",
        "max_batch",
        "sync ms",
        "jobs/s",
        "batched ms",
        "jobs/s",
        "batches",
        "occupancy",
        "speedup"
    );

    let mut reference: Option<Vec<u64>> = None;
    let mut json_rows: Vec<Json> = Vec::new();
    for &shards in shard_counts {
        for &max_batch in batch_sizes {
            let config = ServeConfig {
                shards: Parallelism::threads(shards),
                max_batch,
                options: ElfOptions {
                    parallelism: options.parallelism(),
                    ..ElfOptions::default()
                },
                ..Default::default()
            };

            let sync_latency = LatencyHists::new();
            let sync_service = ElfService::start(classifier.clone(), config);
            let (sync_signatures, sync_secs) = run_sync_all(&sync_service, &jobs, &sync_latency);
            sync_service.shutdown();

            let batch_latency = LatencyHists::new();
            let batch_service = ElfService::start(classifier.clone(), config);
            let (batch_signatures, batch_secs) =
                run_batched_all(&batch_service, &jobs, &batch_latency);
            let stats: ServiceStats = batch_service.shutdown();

            // Determinism gate: every configuration and both submission
            // modes must produce identical per-job results.
            assert_eq!(
                sync_signatures, batch_signatures,
                "submission mode changed a served result (shards={shards})"
            );
            match &reference {
                None => reference = Some(sync_signatures),
                Some(reference) => assert_eq!(
                    reference, &sync_signatures,
                    "shards={shards}, max_batch={max_batch} changed a served result"
                ),
            }

            let (_, _, batch_service_p50, batch_service_p99) = batch_latency.quantiles_us();
            println!(
                "{:<8} {:>10} | {:>12.2} {:>9.1} | {:>12.2} {:>9.1} {:>10} {:>10.1} | {:>7.2}x | p50/p99 {}/{} us",
                shards,
                max_batch,
                sync_secs * 1e3,
                num_jobs as f64 / sync_secs,
                batch_secs * 1e3,
                num_jobs as f64 / batch_secs,
                stats.inference_batches,
                stats.mean_batch_occupancy(),
                sync_secs / batch_secs,
                batch_service_p50,
                batch_service_p99
            );
            let mut row = vec![
                Json::field("shards", Json::Int(shards as i64)),
                Json::field("max_batch", Json::Int(max_batch as i64)),
                Json::field("sync_ms", Json::Num(sync_secs * 1e3)),
                Json::field("sync_jobs_per_sec", Json::Num(num_jobs as f64 / sync_secs)),
                Json::field("batched_ms", Json::Num(batch_secs * 1e3)),
                Json::field(
                    "batched_jobs_per_sec",
                    Json::Num(num_jobs as f64 / batch_secs),
                ),
                Json::field(
                    "inference_batches",
                    Json::Int(stats.inference_batches as i64),
                ),
                Json::field("mean_occupancy", Json::Num(stats.mean_batch_occupancy())),
                Json::field("speedup", Json::Num(sync_secs / batch_secs)),
            ];
            row.extend(sync_latency.json_fields("sync_"));
            row.extend(batch_latency.json_fields("batched_"));
            json_rows.push(Json::Obj(row));
        }
    }
    if let Some(path) = &options.json {
        let value = Json::Obj(vec![
            Json::field("bench", Json::Str("serve_throughput".to_string())),
            Json::field("jobs", Json::Int(num_jobs as i64)),
            Json::field("seed", Json::Int(options.seed as i64)),
            Json::field(
                "engine_parallelism",
                Json::Str(options.parallelism().to_string()),
            ),
            Json::field("rows", Json::Arr(json_rows)),
            Json::field("deterministic_across_configs", Json::Bool(true)),
        ]);
        write_json_file(path, &value);
    }
    println!();
    println!(
        "speedup = batched submission over one-at-a-time run_sync on the same service; \
         identical per-job results across all {} configurations verified.",
        shard_counts.len() * batch_sizes.len()
    );
}
