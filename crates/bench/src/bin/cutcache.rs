//! Cut-cache benchmark: the PR 9 NPN-canonical factoring-cache experiment.
//!
//! The job set is the determinism-suite circuits (the scripted random
//! circuits the serving layer's determinism stress tests hammer).  The
//! harness runs them twice through one [`ElfService`] — a cold epoch that
//! populates the service-lifetime cache and a warm epoch that must hit it —
//! and reports per-epoch hit rates plus wall-clock, then repeats the warm
//! epoch against a cache-disabled service to show the cache never changes a
//! served result (node counts must match job for job).
//!
//! The run **fails** if the warm epoch records zero cache hits: cross-job
//! persistence is the acceptance criterion, not an incidental detail.
//!
//! `--quick` shrinks the job set and training for the CI smoke run;
//! `--json <path>` persists machine-readable results
//! (`BENCH_pr9_cutcache.json` in CI).

use std::process::ExitCode;
use std::time::{Duration, Instant};

use elf_aig::Aig;
use elf_bench::{write_json_file, HarnessOptions, Json};
use elf_circuits::{scripted_circuit, GateChoice};
use elf_core::{circuit_dataset, CutCacheConfig, ElfClassifier, ElfOptions};
use elf_nn::TrainConfig;
use elf_opt::RefactorParams;
use elf_serve::{ElfService, ServeConfig};

const SCRIPT: &str = "rf; rw; rs";

/// The scripted random circuits of the serve determinism suite (same
/// generator parameters as `crates/serve/tests/determinism.rs`).
fn determinism_suite(jobs: usize) -> Vec<(String, Aig)> {
    (0..jobs)
        .map(|job| {
            let gates: Vec<GateChoice> = (0..20 + (job % 5) * 6)
                .map(|i| ((i + job) as u8, 3 * i + job, 5 * i + 1, 7 * i + 2 * job))
                .collect();
            let aig = scripted_circuit(4 + job % 3, &gates);
            (format!("scripted{job:02}"), aig)
        })
        .collect()
}

/// One epoch's aggregate over the whole job set.
struct EpochReport {
    label: &'static str,
    jobs: usize,
    hits: u64,
    misses: u64,
    nodes_after: Vec<usize>,
    wall: Duration,
}

impl EpochReport {
    fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Runs every suite circuit through `service` once, collecting per-job
/// cache counters and result sizes.
fn run_epoch(
    label: &'static str,
    service: &ElfService,
    suite: &[(String, Aig)],
) -> Option<EpochReport> {
    let mut handle = service.handle();
    let started = Instant::now();
    let mut hits = 0;
    let mut misses = 0;
    let mut nodes_after = Vec::with_capacity(suite.len());
    for (name, aig) in suite {
        let response = match handle.run_sync(aig.clone(), SCRIPT) {
            Ok(response) => response,
            Err(error) => {
                eprintln!("cutcache bench: submitting {name} failed: {error}");
                return None;
            }
        };
        if response.failed {
            eprintln!("cutcache bench: {name} came back failed");
            return None;
        }
        hits += response.stats.cache_hits;
        misses += response.stats.cache_misses;
        nodes_after.push(response.stats.nodes_after);
    }
    Some(EpochReport {
        label,
        jobs: suite.len(),
        hits,
        misses,
        nodes_after,
        wall: started.elapsed(),
    })
}

fn millis(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

fn main() -> ExitCode {
    let options = HarnessOptions::from_args();
    let quick = options.epochs <= 3;
    let suite = determinism_suite(if quick { 8 } else { 15 });

    // One small trainer circuit feeds the classifier — the experiment
    // measures the factoring cache, not classifier quality.
    let trainer = elf_circuits::epfl::arithmetic_circuit("square", options.scale);
    let data = circuit_dataset(&trainer, &RefactorParams::default());
    let train = TrainConfig {
        epochs: options.epochs,
        ..TrainConfig::default()
    };
    let (classifier, _) = ElfClassifier::fit(&data, &train, options.seed);

    let config = ServeConfig {
        shards: options.parallelism(),
        ..ServeConfig::default()
    };
    let service = ElfService::start(classifier.clone(), config);
    let Some(cold) = run_epoch("cold", &service, &suite) else {
        return ExitCode::FAILURE;
    };
    let Some(warm) = run_epoch("warm", &service, &suite) else {
        return ExitCode::FAILURE;
    };
    let lifetime = service.shutdown().cut_cache;

    // The control: an identical service with the cache disabled must land
    // on identical node counts, job for job.
    let uncached_service = ElfService::start(
        classifier,
        ServeConfig {
            options: ElfOptions {
                cut_cache: CutCacheConfig::disabled(),
                ..config.options
            },
            ..config
        },
    );
    let Some(uncached) = run_epoch("uncached", &uncached_service, &suite) else {
        return ExitCode::FAILURE;
    };
    uncached_service.shutdown();

    for epoch in [&cold, &warm, &uncached] {
        println!(
            "{:<9} {:>2} jobs | {:>5} hits {:>5} misses ({:>5.1}% hit rate) | {:>9.2} ms",
            epoch.label,
            epoch.jobs,
            epoch.hits,
            epoch.misses,
            epoch.hit_rate() * 100.0,
            millis(epoch.wall),
        );
    }
    println!(
        "-- lifetime: {} entries, {} hits / {} misses ({:.1}% hit rate) --",
        lifetime.entries,
        lifetime.hits,
        lifetime.misses,
        lifetime.hit_rate() * 100.0,
    );

    let results_match = warm.nodes_after == uncached.nodes_after;
    let warm_hits = warm.hits > 0;
    if !results_match {
        eprintln!("cutcache bench: cached and uncached services served different node counts");
    }
    if !warm_hits {
        eprintln!("cutcache bench: the warm epoch recorded zero cache hits");
    }

    if let Some(path) = &options.json {
        let epochs: Vec<Json> = [&cold, &warm, &uncached]
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    Json::field("epoch", Json::Str(e.label.to_string())),
                    Json::field("jobs", Json::Int(e.jobs as i64)),
                    Json::field("cache_hits", Json::Int(e.hits as i64)),
                    Json::field("cache_misses", Json::Int(e.misses as i64)),
                    Json::field("hit_rate", Json::Num(e.hit_rate())),
                    Json::field("wall_ms", Json::Num(millis(e.wall))),
                ])
            })
            .collect();
        write_json_file(
            path,
            &Json::Obj(vec![
                Json::field("bench", Json::Str("cutcache".to_string())),
                Json::field("script", Json::Str(SCRIPT.to_string())),
                Json::field("seed", Json::Int(options.seed as i64)),
                Json::field("threads", Json::Str(options.parallelism().to_string())),
                Json::field("epochs", Json::Arr(epochs)),
                Json::field("lifetime_entries", Json::Int(lifetime.entries as i64)),
                Json::field("lifetime_hits", Json::Int(lifetime.hits as i64)),
                Json::field("lifetime_misses", Json::Int(lifetime.misses as i64)),
                Json::field("lifetime_hit_rate", Json::Num(lifetime.hit_rate())),
                Json::field("warm_epoch_hit", Json::Bool(warm_hits)),
                Json::field("results_match_uncached", Json::Bool(results_match)),
            ]),
        );
    }

    if results_match && warm_hits {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
