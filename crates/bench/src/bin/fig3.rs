//! Figure 3: t-SNE visualization of the cut-feature space.
//!
//! Writes `fig3_tsne.csv` with one row per sampled cut: the two embedding
//! coordinates and the refactored/not-refactored label (the colour in the
//! paper's scatter plot), and prints a coarse ASCII preview.

use std::fs;

use elf_analysis::{tsne, TsneConfig};
use elf_bench::HarnessOptions;
use elf_core::collect_labeled_cuts;

fn main() {
    let options = HarnessOptions::from_args();
    let config = options.experiment_config(1);
    let circuits = options.epfl_circuits();
    // The paper plots the feature space of the evaluation circuits; sample a
    // bounded number of cuts per circuit to keep exact t-SNE tractable.
    let mut points = Vec::new();
    let mut labels = Vec::new();
    let per_circuit = 250usize;
    for circuit in &circuits {
        let cuts = collect_labeled_cuts(&circuit.aig, &config.elf.refactor);
        // Keep all positives (they are rare) and a stride of negatives.
        let positives = cuts.iter().filter(|c| c.committed);
        let negatives = cuts.iter().filter(|c| !c.committed);
        let stride = (cuts.len() / per_circuit).max(1);
        for cut in positives.chain(negatives.step_by(stride)).take(per_circuit) {
            points.push(cut.features.to_array().iter().map(|&v| v as f64).collect());
            labels.push(cut.committed);
        }
    }
    println!(
        "Figure 3: embedding {} cuts ({} refactored) with exact t-SNE...",
        points.len(),
        labels.iter().filter(|&&l| l).count()
    );
    let embedding = tsne(
        &points,
        &TsneConfig {
            iterations: 250,
            perplexity: 30.0,
            ..Default::default()
        },
    );

    let mut csv = String::from("x,y,refactored\n");
    for (point, &label) in embedding.iter().zip(&labels) {
        csv.push_str(&format!("{},{},{}\n", point[0], point[1], u8::from(label)));
    }
    fs::write("fig3_tsne.csv", &csv).expect("write fig3_tsne.csv");
    println!("wrote fig3_tsne.csv ({} points)", embedding.len());

    // Coarse ASCII preview: positives are '#', negatives '.'.
    let width = 60usize;
    let height = 24usize;
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for p in &embedding {
        min_x = min_x.min(p[0]);
        max_x = max_x.max(p[0]);
        min_y = min_y.min(p[1]);
        max_y = max_y.max(p[1]);
    }
    let mut grid = vec![vec![' '; width]; height];
    for (p, &label) in embedding.iter().zip(&labels) {
        let col = (((p[0] - min_x) / (max_x - min_x + 1e-9)) * (width - 1) as f64) as usize;
        let row = (((p[1] - min_y) / (max_y - min_y + 1e-9)) * (height - 1) as f64) as usize;
        let cell = &mut grid[row][col];
        if label {
            *cell = '#';
        } else if *cell == ' ' {
            *cell = '.';
        }
    }
    println!("ASCII preview ('#' = refactored, '.' = not refactored):");
    for row in grid {
        println!("  {}", row.into_iter().collect::<String>());
    }
}
