//! Table VI: baseline refactor vs ELF on the large synthetic circuits.
//!
//! The classifier is trained on the arithmetic suite (the synthetic circuits
//! are never part of training), mirroring the paper's protocol of testing on
//! previously unseen designs.

use elf_bench::{paper, print_comparison_table, CachedSuite, HarnessOptions};
use elf_core::experiment::compare_on_circuit;

fn main() {
    let options = HarnessOptions::from_args();
    let config = options.experiment_config(1);
    // Train on the arithmetic suite only.
    let trainer_suite = CachedSuite::new(options.epfl_circuits(), config);
    let classifier = trainer_suite.train_all();

    let synthetic = options.synthetic_circuits();
    let rows: Vec<_> = synthetic
        .iter()
        .map(|circuit| compare_on_circuit(circuit, &classifier, &config))
        .collect();
    print_comparison_table(
        &format!(
            "Table VI: refactor vs ELF on large synthetic circuits (size scale {})",
            options.synthetic_scale
        ),
        &rows,
    );
    println!();
    println!("Paper reference (full-size circuits, 16M-23M nodes):");
    for (name, speedup) in paper::SYNTHETIC_SPEEDUPS {
        println!("  {name:<14} speed-up {speedup:.2}x, And difference below +0.07 %");
    }
    println!("Run with --scale paper for multi-million-node instances (hours of runtime).");
}
