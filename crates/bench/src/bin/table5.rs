//! Table V: baseline refactor vs ELF on the industrial-like designs.

use elf_bench::{paper, print_comparison_table, CachedSuite, HarnessOptions};

fn main() {
    let options = HarnessOptions::from_args();
    let suite = CachedSuite::new(options.industrial_circuits(), options.experiment_config(1));
    let rows = suite.comparison_rows();
    print_comparison_table(
        &format!(
            "Table V: refactor vs ELF on industrial circuits (size scale {})",
            options.industrial_scale
        ),
        &rows,
    );
    println!();
    println!(
        "Paper reference: speed-ups 2.01x-4.29x (mean {:.2}x), And increase at most {:+.2} %.",
        paper::INDUSTRIAL_MEAN_SPEEDUP,
        paper::INDUSTRIAL_WORST_AND_INCREASE
    );
}
