//! Figure 4: SHAP (Shapley) values of the six cut features for the trained
//! classifier.
//!
//! Prints the mean and mean-absolute Shapley value per feature and writes the
//! per-instance attributions to `fig4_shap.csv`.

use std::fs;

use elf_aig::FEATURE_NAMES;
use elf_analysis::shap_summary;
use elf_bench::{CachedSuite, HarnessOptions};
use elf_core::collect_labeled_cuts;

fn main() {
    let options = HarnessOptions::from_args();
    let config = options.experiment_config(1);
    let suite = CachedSuite::new(options.epfl_circuits(), config);
    // Train on all arithmetic circuits, explain on a sample of their cuts.
    let classifier = suite.train_all();

    let mut instances: Vec<Vec<f32>> = Vec::new();
    for circuit in suite.circuits() {
        let cuts = collect_labeled_cuts(&circuit.aig, &config.elf.refactor);
        let stride = (cuts.len() / 40).max(1);
        for cut in cuts.iter().step_by(stride).take(40) {
            instances.push(cut.features.to_array().to_vec());
        }
    }
    let background: Vec<Vec<f32>> = instances.iter().step_by(8).take(32).cloned().collect();
    let model = |rows: &[Vec<f32>]| -> Vec<f32> {
        let arrays: Vec<[f32; 6]> = rows
            .iter()
            .map(|r| [r[0], r[1], r[2], r[3], r[4], r[5]])
            .collect();
        classifier.predict_batch(&arrays)
    };
    println!(
        "Figure 4: exact Shapley values over {} instances ({} background rows)",
        instances.len(),
        background.len()
    );
    let summary = shap_summary(&model, &instances, &background);

    let mut csv = FEATURE_NAMES.join(",");
    csv.push('\n');
    for row in &summary.per_instance {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.6}")).collect();
        csv.push_str(&cells.join(","));
        csv.push('\n');
    }
    fs::write("fig4_shap.csv", &csv).expect("write fig4_shap.csv");
    println!("wrote fig4_shap.csv");
    println!();
    println!(
        "{:<22} {:>12} {:>14}",
        "feature", "mean SHAP", "mean |SHAP|"
    );
    let mut order: Vec<usize> = (0..FEATURE_NAMES.len()).collect();
    order.sort_by(|&a, &b| {
        summary.mean_abs[b]
            .partial_cmp(&summary.mean_abs[a])
            .expect("finite SHAP")
    });
    for feature in order {
        println!(
            "{:<22} {:>+12.5} {:>14.5}",
            FEATURE_NAMES[feature], summary.mean[feature], summary.mean_abs[feature]
        );
    }
    println!();
    println!("Paper reference: few reconvergent nodes push towards 'no refactor'; many");
    println!("leaves, high root level and large cut size also push towards 'no refactor'.");
}
