//! Table IV: baseline refactor (applied once) vs ELF applied twice on the
//! arithmetic suite.

use elf_bench::{print_comparison_table, CachedSuite, HarnessOptions};

fn main() {
    let options = HarnessOptions::from_args();
    let suite = CachedSuite::new(options.epfl_circuits(), options.experiment_config(2));
    let rows = suite.comparison_rows();
    print_comparison_table(
        &format!(
            "Table IV: refactor vs ELF x 2 on arithmetic circuits (scale {:?})",
            options.scale
        ),
        &rows,
    );
    println!();
    println!("Paper reference: ELF x 2 keeps a 1.34x-3.38x speed-up and can reduce the area");
    println!("below the single baseline pass on the largest circuits (div, hyp).");
}
