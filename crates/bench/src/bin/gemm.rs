//! GEMM kernel benchmark: the PR 9 blocked-kernel experiment.
//!
//! For every shape the harness times the blocked/transposed kernels of
//! `elf_nn::Matrix` ([`Matrix::matmul`], [`Matrix::matmul_transpose_self`],
//! [`Matrix::matmul_transpose_other`]) against their retained naive triple-
//! loop oracles, and **asserts bit-identity of every product** — the blocked
//! kernels reorder which output element is updated next, never the
//! within-element addition order, so on finite inputs the results must match
//! to the last bit.  The headline row is the classifier-shaped workload
//! (batch × 6 features through the paper's 50-unit hidden layer); square
//! shapes from 64×64 up show the autovectorization payoff the restructuring
//! exists for.
//!
//! `--quick` shrinks repetitions and drops the largest shapes for the CI
//! smoke run; `--json <path>` persists machine-readable results
//! (`BENCH_pr9_gemm.json` in CI).

use std::process::ExitCode;
use std::time::Instant;

use elf_bench::{write_json_file, HarnessOptions, Json};
use elf_nn::Matrix;

/// One benchmarked shape: `m×k` times `k×n`.
struct Shape {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
}

/// Measured outcome of one shape across the three kernel pairs.
struct ShapeReport {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
    blocked_ms: f64,
    naive_ms: f64,
    transpose_blocked_ms: f64,
    transpose_naive_ms: f64,
    bit_identical: bool,
}

impl ShapeReport {
    fn speedup(&self) -> f64 {
        if self.blocked_ms > 0.0 {
            self.naive_ms / self.blocked_ms
        } else {
            0.0
        }
    }

    fn transpose_speedup(&self) -> f64 {
        if self.transpose_blocked_ms > 0.0 {
            self.transpose_naive_ms / self.transpose_blocked_ms
        } else {
            0.0
        }
    }
}

/// Deterministic pseudo-random matrix with mixed magnitudes (the same
/// recipe the kernel unit tests use: large, small and unit-scale entries
/// interleaved, so associativity bugs cannot hide behind uniform data).
fn pseudo_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let data = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let unit = ((state >> 33) as f64 / (1u64 << 31) as f64) as f32 - 1.0;
            match state % 3 {
                0 => unit,
                1 => unit * 1e-4,
                _ => unit * 1e4,
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// `true` when both matrices agree on every element, to the bit.
fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Times `reps` applications of `f`, returning (total ms, last product).
fn time_kernel(reps: usize, mut f: impl FnMut() -> Matrix) -> (f64, Matrix) {
    let mut product = f();
    let started = Instant::now();
    for _ in 0..reps {
        product = f();
    }
    (started.elapsed().as_secs_f64() * 1e3, product)
}

fn run_shape(shape: &Shape, reps: usize, seed: u64) -> ShapeReport {
    let a = pseudo_matrix(shape.m, shape.k, seed);
    let b = pseudo_matrix(shape.k, shape.n, seed ^ 0xB10C);
    // `matmul_transpose_other` computes A · Bᵗ, so hand it B pre-transposed.
    let bt = {
        let mut data = vec![0.0f32; shape.n * shape.k];
        for r in 0..shape.k {
            for c in 0..shape.n {
                data[c * shape.k + r] = b.get(r, c);
            }
        }
        Matrix::from_vec(shape.n, shape.k, data)
    };

    let (blocked_ms, blocked) = time_kernel(reps, || a.matmul(&b));
    let (naive_ms, naive) = time_kernel(reps, || a.matmul_naive(&b));
    let (transpose_blocked_ms, t_blocked) = time_kernel(reps, || a.matmul_transpose_other(&bt));
    let (transpose_naive_ms, t_naive) = time_kernel(reps, || a.matmul_transpose_other_naive(&bt));
    let self_blocked = a.matmul_transpose_self(&a);
    let self_naive = a.matmul_transpose_self_naive(&a);

    ShapeReport {
        name: shape.name,
        m: shape.m,
        k: shape.k,
        n: shape.n,
        reps,
        blocked_ms,
        naive_ms,
        transpose_blocked_ms,
        transpose_naive_ms,
        bit_identical: bits_equal(&blocked, &naive)
            && bits_equal(&t_blocked, &t_naive)
            && bits_equal(&self_blocked, &self_naive),
    }
}

fn main() -> ExitCode {
    let options = HarnessOptions::from_args();
    let quick = options.epochs <= 3;

    let mut shapes = vec![
        // The serving workload: a coalesced feature batch through the
        // paper's 6-50-50-1 classifier (k and n are the layer widths).
        Shape {
            name: "classifier",
            m: 256,
            k: 6,
            n: 50,
        },
        Shape {
            name: "hidden",
            m: 256,
            k: 50,
            n: 50,
        },
        // The acceptance shape: blocked must beat naive from 64×64 up.
        Shape {
            name: "square64",
            m: 64,
            k: 64,
            n: 64,
        },
        Shape {
            name: "square128",
            m: 128,
            k: 128,
            n: 128,
        },
        // Deliberately non-multiple-of-block dimensions.
        Shape {
            name: "ragged",
            m: 97,
            k: 131,
            n: 59,
        },
    ];
    if !quick {
        shapes.push(Shape {
            name: "square256",
            m: 256,
            k: 256,
            n: 256,
        });
    }
    let reps = if quick { 20 } else { 200 };

    let mut reports = Vec::new();
    let mut all_identical = true;
    for shape in &shapes {
        let report = run_shape(shape, reps, options.seed);
        all_identical &= report.bit_identical;
        println!(
            "{:<10} {:>3}x{:<3}x{:<3} | matmul {:>9.3} ms vs naive {:>9.3} ms ({:>5.2}x) \
             | A·Bᵗ {:>9.3} ms vs naive {:>9.3} ms ({:>5.2}x) | {}",
            report.name,
            report.m,
            report.k,
            report.n,
            report.blocked_ms,
            report.naive_ms,
            report.speedup(),
            report.transpose_blocked_ms,
            report.transpose_naive_ms,
            report.transpose_speedup(),
            if report.bit_identical {
                "BIT-IDENTICAL"
            } else {
                "DIVERGED"
            },
        );
        reports.push(report);
    }

    let at_least_64: Vec<&ShapeReport> =
        reports.iter().filter(|r| r.m >= 64 && r.k >= 64).collect();
    let faster = at_least_64.iter().filter(|r| r.speedup() > 1.0).count();
    println!(
        "-- {}/{} shapes bit-identical, blocked faster on {}/{} shapes at >=64x64 --",
        reports.iter().filter(|r| r.bit_identical).count(),
        reports.len(),
        faster,
        at_least_64.len(),
    );

    if let Some(path) = &options.json {
        write_json_file(path, &results_json(&options, &reports));
    }

    if all_identical {
        ExitCode::SUCCESS
    } else {
        eprintln!("gemm bench: blocked and naive kernels diverged bitwise");
        ExitCode::FAILURE
    }
}

fn results_json(options: &HarnessOptions, reports: &[ShapeReport]) -> Json {
    let rows: Vec<Json> = reports
        .iter()
        .map(|r| {
            Json::Obj(vec![
                Json::field("shape", Json::Str(r.name.to_string())),
                Json::field("m", Json::Int(r.m as i64)),
                Json::field("k", Json::Int(r.k as i64)),
                Json::field("n", Json::Int(r.n as i64)),
                Json::field("reps", Json::Int(r.reps as i64)),
                Json::field("matmul_blocked_ms", Json::Num(r.blocked_ms)),
                Json::field("matmul_naive_ms", Json::Num(r.naive_ms)),
                Json::field("matmul_speedup", Json::Num(r.speedup())),
                Json::field("transpose_blocked_ms", Json::Num(r.transpose_blocked_ms)),
                Json::field("transpose_naive_ms", Json::Num(r.transpose_naive_ms)),
                Json::field("transpose_speedup", Json::Num(r.transpose_speedup())),
                Json::field("bit_identical", Json::Bool(r.bit_identical)),
            ])
        })
        .collect();
    Json::Obj(vec![
        Json::field("bench", Json::Str("gemm".to_string())),
        Json::field("seed", Json::Int(options.seed as i64)),
        Json::field("threads", Json::Str(options.parallelism().to_string())),
        Json::field("shapes", Json::Int(reports.len() as i64)),
        Json::field(
            "all_bit_identical",
            Json::Bool(reports.iter().all(|r| r.bit_identical)),
        ),
        Json::field("rows", Json::Arr(rows)),
    ])
}
