//! Table III: baseline refactor vs ELF on the arithmetic suite
//! (leave-one-out trained classifier).
//!
//! `--threads N` (or `ELF_THREADS`) fans the protocol out: one held-out
//! circuit per worker, and inside each pruned pass the parallel engine also
//! chunks cut collection and batched inference.  The reported rows are
//! identical for every thread count; only the wall clock moves.

use elf_bench::{
    comparison_rows_json, paper, print_comparison_table, write_json_file, CachedSuite,
    HarnessOptions,
};

fn main() {
    let options = HarnessOptions::from_args();
    let suite = CachedSuite::new(options.epfl_circuits(), options.experiment_config(1));
    let rows = suite.comparison_rows();
    print_comparison_table(
        &format!(
            "Table III: refactor vs ELF on arithmetic circuits (scale {:?}, {})",
            options.scale,
            options.parallelism()
        ),
        &rows,
    );
    if let Some(path) = &options.json {
        write_json_file(path, &comparison_rows_json("table3", &options, &rows));
    }
    println!();
    println!(
        "Paper reference: speed-ups 2.50x-7.69x (mean {:.2}x), And increase at most {:+.2} %, levels unchanged.",
        paper::EPFL_MEAN_SPEEDUP,
        paper::EPFL_WORST_AND_INCREASE
    );
}
