//! Equivalence-checking benchmark: the PR 8 correctness-gate experiment.
//!
//! The circuit set is the determinism-suite job set (the scripted random
//! circuits the serving layer's determinism stress tests hammer) plus the
//! SAT-friendly arithmetic benchmarks.  The remaining arithmetic circuits
//! (`div`, `hyp`, `multiplier`) are *structurally* hard CEC instances —
//! divider and multiplier miters are the classical worst case for CDCL —
//! and honestly exhaust the conflict budget, so they stay out of the CI
//! gate.
//!
//! For every circuit the harness
//!
//! 1. runs the full pruned `rf; rw; rs` flow twice — once under
//!    [`VerifyMode::Final`], once under [`VerifyMode::PerStage`] — and
//!    demands a SAT proof of equivalence from every check,
//! 2. re-checks golden-vs-optimized standalone through
//!    [`elf_cec::check_equivalence_with`] to collect sweep statistics
//!    (candidate classes, proved/refuted pairs, SAT calls, conflicts),
//! 3. injects an output flip into the optimized circuit and demands a
//!    refutation whose counterexample replays to a real disagreement.
//!
//! `--quick` shrinks everything to the CI smoke size; `--json <path>`
//! persists the machine-readable results (`BENCH_pr8_cec.json` in CI).

use std::process::ExitCode;
use std::time::{Duration, Instant};

use elf_bench::{write_json_file, HarnessOptions, Json};
use elf_cec::{check_equivalence_with, CecParams, Equivalence};
use elf_circuits::epfl::Scale;
use elf_circuits::{scripted_circuit, GateChoice};
use elf_core::{circuit_dataset, ElfClassifier, ElfOptions, Flow, VerifyMode};
use elf_nn::TrainConfig;
use elf_opt::RefactorParams;

const SCRIPT: &str = "rf; rw; rs";

/// The scripted random circuits of the serve determinism suite (same
/// generator parameters as `crates/serve/tests/determinism.rs`).
fn determinism_suite() -> Vec<(String, elf_aig::Aig)> {
    (0..15)
        .map(|job| {
            let gates: Vec<GateChoice> = (0..20 + (job % 5) * 6)
                .map(|i| ((i + job) as u8, 3 * i + job, 5 * i + 1, 7 * i + 2 * job))
                .collect();
            let aig = scripted_circuit(4 + job % 3, &gates);
            (format!("scripted{job:02}"), aig)
        })
        .collect()
}

/// The arithmetic benchmarks whose miters the sweep discharges quickly.
/// Always built at tiny width (SAT hardness grows exponentially with
/// operand width); larger `--scale` settings widen the set, not the
/// operands.
fn friendly_arithmetic(scale: Scale) -> Vec<(String, elf_aig::Aig)> {
    let mut names = vec!["sqrt", "square"];
    if scale != Scale::Tiny {
        names.push("log2");
    }
    names
        .into_iter()
        .map(|name| {
            (
                name.to_string(),
                elf_circuits::epfl::arithmetic_circuit(name, Scale::Tiny),
            )
        })
        .collect()
}

/// Per-circuit outcome of the verification experiment.
struct CircuitReport {
    name: String,
    ands_before: usize,
    ands_after: usize,
    final_proved: bool,
    per_stage_proved: bool,
    per_stage_checks: usize,
    mutation_refuted: bool,
    candidate_classes: usize,
    proved_pairs: usize,
    disproved_pairs: usize,
    undecided_pairs: usize,
    sat_calls: usize,
    conflicts: u64,
    verify_time: Duration,
}

fn millis(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

fn main() -> ExitCode {
    let options = HarnessOptions::from_args();

    // One small trainer circuit feeds the classifier used by every pruned
    // stage — the experiment measures the verifier, not classifier quality.
    let trainer = elf_circuits::epfl::arithmetic_circuit("square", options.scale);
    let data = circuit_dataset(&trainer, &RefactorParams::default());
    let train = TrainConfig {
        epochs: options.epochs,
        ..TrainConfig::default()
    };
    let (classifier, _) = ElfClassifier::fit(&data, &train, options.seed);

    let elf_options = ElfOptions {
        parallelism: options.parallelism(),
        ..ElfOptions::default()
    };

    let mut suite = determinism_suite();
    suite.extend(friendly_arithmetic(options.scale));

    let mut reports = Vec::new();
    let mut all_green = true;
    for (name, aig) in &suite {
        let report = run_circuit(name, aig, &classifier, elf_options);
        let green = report.final_proved && report.per_stage_proved && report.mutation_refuted;
        all_green &= green;
        println!(
            "{:<14} {:>8} -> {:>8} ands | final {} | per-stage {} ({} checks) | mutation {} | \
             {:>3} classes {:>4} proved {:>3} refuted {:>4} SAT calls {:>8} conflicts | {:>9.2} ms",
            report.name,
            report.ands_before,
            report.ands_after,
            verdict(report.final_proved),
            verdict(report.per_stage_proved),
            report.per_stage_checks,
            verdict(report.mutation_refuted),
            report.candidate_classes,
            report.proved_pairs,
            report.disproved_pairs,
            report.sat_calls,
            report.conflicts,
            millis(report.verify_time),
        );
        reports.push(report);
    }

    let proved = reports.iter().filter(|r| r.final_proved).count();
    let refuted = reports.iter().filter(|r| r.mutation_refuted).count();
    let undecided: usize = reports.iter().map(|r| r.undecided_pairs).sum();
    println!(
        "-- {proved}/{} flows proved, {refuted}/{} mutations refuted, {undecided} sweep pairs \
         undecided --",
        reports.len(),
        reports.len(),
    );

    if let Some(path) = &options.json {
        write_json_file(path, &results_json(&options, &reports));
    }

    if all_green {
        ExitCode::SUCCESS
    } else {
        eprintln!("cec bench: verification failed on at least one circuit");
        ExitCode::FAILURE
    }
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "PROVED "
    } else {
        "FAILED "
    }
}

fn run_circuit(
    name: &str,
    golden: &elf_aig::Aig,
    classifier: &ElfClassifier,
    elf_options: ElfOptions,
) -> CircuitReport {
    let started = Instant::now();

    // Full pruned flow under Final verification.
    let mut optimized = golden.clone();
    let final_options = ElfOptions {
        verify: VerifyMode::Final,
        ..elf_options
    };
    let final_stats = Flow::pruned_from_script(SCRIPT, classifier, final_options)
        .expect("the benchmark script is well-formed")
        .run(&mut optimized);
    let final_proved = final_stats.verify.as_ref().is_some_and(|v| v.proved());

    // Same flow under PerStage verification (localizing any miscompile).
    let mut per_stage_aig = golden.clone();
    let per_stage_options = ElfOptions {
        verify: VerifyMode::PerStage,
        ..elf_options
    };
    let per_stage_stats = Flow::pruned_from_script(SCRIPT, classifier, per_stage_options)
        .expect("the benchmark script is well-formed")
        .run(&mut per_stage_aig);
    let (per_stage_proved, per_stage_checks) = per_stage_stats
        .verify
        .as_ref()
        .map_or((false, 0), |v| (v.proved(), v.checks.len()));

    // Standalone golden-vs-optimized check, for the sweep statistics.
    let report = check_equivalence_with(golden, &optimized, &CecParams::default());
    let standalone_proved = report.result.is_proved();

    // Refutation: a single flipped output must yield a replayable witness.
    let mut broken = optimized.clone();
    let out = broken.outputs()[0];
    broken.set_output(0, !out);
    let mutation_refuted =
        match check_equivalence_with(golden, &broken, &CecParams::default()).result {
            Equivalence::CounterExample(witness) => {
                golden.evaluate(&witness) != broken.evaluate(&witness)
            }
            _ => false,
        };

    CircuitReport {
        name: name.to_string(),
        ands_before: final_stats.ands_before,
        ands_after: final_stats.ands_after,
        final_proved: final_proved && standalone_proved,
        per_stage_proved,
        per_stage_checks,
        mutation_refuted,
        candidate_classes: report.candidate_classes,
        proved_pairs: report.proved_pairs,
        disproved_pairs: report.disproved_pairs,
        undecided_pairs: report.undecided_pairs,
        sat_calls: report.sat_calls,
        conflicts: report.conflicts,
        verify_time: started.elapsed(),
    }
}

fn results_json(options: &HarnessOptions, reports: &[CircuitReport]) -> Json {
    let rows: Vec<Json> = reports
        .iter()
        .map(|r| {
            Json::Obj(vec![
                Json::field("design", Json::Str(r.name.clone())),
                Json::field("ands_before", Json::Int(r.ands_before as i64)),
                Json::field("ands_after", Json::Int(r.ands_after as i64)),
                Json::field("final_proved", Json::Bool(r.final_proved)),
                Json::field("per_stage_proved", Json::Bool(r.per_stage_proved)),
                Json::field("per_stage_checks", Json::Int(r.per_stage_checks as i64)),
                Json::field("mutation_refuted", Json::Bool(r.mutation_refuted)),
                Json::field("candidate_classes", Json::Int(r.candidate_classes as i64)),
                Json::field("proved_pairs", Json::Int(r.proved_pairs as i64)),
                Json::field("disproved_pairs", Json::Int(r.disproved_pairs as i64)),
                Json::field("undecided_pairs", Json::Int(r.undecided_pairs as i64)),
                Json::field("sat_calls", Json::Int(r.sat_calls as i64)),
                Json::field("conflicts", Json::Int(r.conflicts as i64)),
                Json::field("verify_ms", Json::Num(millis(r.verify_time))),
            ])
        })
        .collect();
    Json::Obj(vec![
        Json::field("bench", Json::Str("cec".to_string())),
        Json::field("script", Json::Str(SCRIPT.to_string())),
        Json::field("scale", Json::Str(format!("{:?}", options.scale))),
        Json::field("seed", Json::Int(options.seed as i64)),
        Json::field("threads", Json::Str(options.parallelism().to_string())),
        Json::field("circuits", Json::Int(reports.len() as i64)),
        Json::field(
            "flows_proved",
            Json::Int(reports.iter().filter(|r| r.final_proved).count() as i64),
        ),
        Json::field(
            "mutations_refuted",
            Json::Int(reports.iter().filter(|r| r.mutation_refuted).count() as i64),
        ),
        Json::field("rows", Json::Arr(rows)),
    ])
}
