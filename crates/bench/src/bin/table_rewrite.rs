//! Rewrite extension (the paper conclusion's first target): baseline rewrite
//! vs classifier-pruned rewrite (`Elf<Rewrite>`) on the arithmetic suite,
//! leave-one-out trained through the operator-generic dataset machinery.
//!
//! There is no corresponding table in the paper; the protocol (leave-one-out
//! training, baseline-vs-pruned comparison, classifier quality) is identical
//! to Tables III/VII with `refactor` swapped for `rewrite`.

use elf_bench::{print_comparison_table, print_quality_table, HarnessOptions};
use elf_core::experiment::{
    compare_with_operator, quality_with_operator, train_leave_one_out_with,
};
use elf_core::{Elf, ElfOptions};
use elf_opt::{Rewrite, RewriteParams};

fn main() {
    let options = HarnessOptions::from_args();
    let circuits = options.epfl_circuits();
    let config = options.experiment_config(1);
    let operator = Rewrite::new(RewriteParams::default());

    let mut comparisons = Vec::new();
    let mut qualities = Vec::new();
    for held_out in 0..circuits.len() {
        let classifier =
            train_leave_one_out_with(&operator, &circuits, held_out, &config.train, config.seed);
        let elf = Elf::with_operator(classifier.clone(), operator.clone(), ElfOptions::default());
        comparisons.push(compare_with_operator(
            &circuits[held_out],
            &operator,
            &elf,
            1,
        ));
        qualities.push(quality_with_operator(
            &circuits[held_out],
            &operator,
            &classifier,
            true,
        ));
    }

    print_comparison_table(
        &format!(
            "Rewrite extension: baseline rewrite vs ELF-pruned rewrite (scale {:?})",
            options.scale
        ),
        &comparisons,
    );
    println!();
    print_quality_table("Rewrite-classifier quality (leave-one-out)", &qualities);
    println!();
    println!(
        "The paper prunes refactor only; this table extends the identical protocol to rewrite \
         (conclusion: \"the same methodology applies to other resynthesis operators\")."
    );
}
