//! Rewrite extension (the paper conclusion's first target): baseline rewrite
//! vs classifier-pruned rewrite (`Elf<Rewrite>`) on the arithmetic suite,
//! leave-one-out trained through the operator-generic dataset machinery.
//!
//! There is no corresponding table in the paper; the protocol (leave-one-out
//! training, baseline-vs-pruned comparison, classifier quality) is identical
//! to Tables III/VII with `refactor` swapped for `rewrite`.

use elf_bench::{print_comparison_table, print_quality_table, HarnessOptions};
use elf_core::experiment::{
    compare_with_operator, quality_with_operator, train_leave_one_out_with,
};
use elf_core::{Elf, ElfOptions};
use elf_opt::{Rewrite, RewriteParams};

fn main() {
    let options = HarnessOptions::from_args();
    let circuits = options.epfl_circuits();
    let config = options.experiment_config(1);
    let operator = Rewrite::new(RewriteParams::default());
    let parallelism = options.parallelism();
    // When the protocol fans out (one held-out circuit per worker), the
    // inner pruned passes stay sequential — two parallel layers would run
    // N² workers on N cores.  With a single circuit the inner pass gets the
    // full worker budget instead.
    let elf_options = ElfOptions {
        parallelism: if circuits.len() > 1 {
            elf_core::Parallelism::sequential()
        } else {
            parallelism
        },
        ..Default::default()
    };

    // One held-out circuit per worker; training is seeded and rows gather in
    // circuit order, so the tables are identical for every thread count.
    let indices: Vec<usize> = (0..circuits.len()).collect();
    let rows = parallelism.map(&indices, |_, &held_out| {
        let classifier =
            train_leave_one_out_with(&operator, &circuits, held_out, &config.train, config.seed);
        let elf = Elf::with_operator(classifier.clone(), operator.clone(), elf_options);
        let comparison = compare_with_operator(&circuits[held_out], &operator, &elf, 1);
        let quality = quality_with_operator(&circuits[held_out], &operator, &classifier, true);
        (comparison, quality)
    });
    let (comparisons, qualities): (Vec<_>, Vec<_>) = rows.into_iter().unzip();

    print_comparison_table(
        &format!(
            "Rewrite extension: baseline rewrite vs ELF-pruned rewrite (scale {:?}, {parallelism})",
            options.scale
        ),
        &comparisons,
    );
    println!();
    print_quality_table("Rewrite-classifier quality (leave-one-out)", &qualities);
    println!();
    println!(
        "The paper prunes refactor only; this table extends the identical protocol to rewrite \
         (conclusion: \"the same methodology applies to other resynthesis operators\")."
    );
}
