//! Table II: statistics of the industrial-like circuits.

use elf_bench::HarnessOptions;
use elf_core::experiment::circuit_stats;

fn main() {
    let options = HarnessOptions::from_args();
    let config = options.experiment_config(1);
    let circuits = options.industrial_circuits();
    println!(
        "Table II: industrial circuit statistics (size scale {}, seed {})",
        options.industrial_scale, options.seed
    );
    println!(
        "{:<14} {:>9} {:>7} {:>7} {:>7} {:>18}",
        "Design", "And", "Level", "PIs", "POs", "Refactored"
    );
    for circuit in &circuits {
        let row = circuit_stats(circuit, &config.elf.refactor);
        println!(
            "{:<14} {:>9} {:>7} {:>7} {:>7} {:>10} ({:.2} %)",
            row.name,
            row.ands,
            row.level,
            row.inputs,
            row.outputs,
            row.refactored,
            row.refactored_fraction() * 100.0
        );
    }
    println!();
    println!("Paper reference: 77k-629k And nodes, depth 35-72, refactored 0.05 %-10.8 %.");
    println!("Run with --scale paper to generate full-size designs.");
}
