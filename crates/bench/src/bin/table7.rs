//! Table VII: classifier quality metrics on the arithmetic suite
//! (leave-one-out).

use elf_bench::{paper, print_quality_table, CachedSuite, HarnessOptions};

fn main() {
    let options = HarnessOptions::from_args();
    let suite = CachedSuite::new(options.epfl_circuits(), options.experiment_config(1));
    let rows = suite.quality_rows();
    print_quality_table(
        &format!(
            "Table VII: ELF classifier quality on arithmetic circuits (scale {:?})",
            options.scale
        ),
        &rows,
    );
    println!();
    println!(
        "Paper reference: recall {:.0} %-{:.0} %, accuracy 77 %-96 %.",
        paper::EPFL_RECALL_RANGE.0 * 100.0,
        paper::EPFL_RECALL_RANGE.1 * 100.0
    );
}
