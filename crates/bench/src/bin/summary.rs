//! Headline summary: the abstract's numbers (average speed-up and quality
//! loss) measured over both suites.

use elf_bench::{geometric_mean, paper, CachedSuite, HarnessOptions};
use elf_core::ComparisonRow;

fn main() {
    let options = HarnessOptions::from_args();
    println!(
        "ELF reproduction summary (scale {:?}, industrial scale {})",
        options.scale, options.industrial_scale
    );

    let epfl = CachedSuite::new(options.epfl_circuits(), options.experiment_config(1));
    let epfl_rows = epfl.comparison_rows();
    let industrial = CachedSuite::new(options.industrial_circuits(), options.experiment_config(1));
    let industrial_rows = industrial.comparison_rows();

    let speedup = |rows: &[ComparisonRow]| geometric_mean(rows.iter().map(ComparisonRow::speedup));
    let worst = |rows: &[ComparisonRow]| {
        rows.iter()
            .map(ComparisonRow::and_difference_percent)
            .fold(0.0, f64::max)
    };

    let all: Vec<ComparisonRow> = epfl_rows
        .iter()
        .chain(industrial_rows.iter())
        .cloned()
        .collect();

    println!();
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "", "measured", "paper", "holds?"
    );
    let check = |measured: f64, reference: f64, higher_is_better: bool| -> &'static str {
        let ok = if higher_is_better {
            measured >= 1.25
        } else {
            measured <= reference.max(0.5)
        };
        if ok {
            "yes"
        } else {
            "no"
        }
    };
    let epfl_speedup = speedup(&epfl_rows);
    let industrial_speedup = speedup(&industrial_rows);
    let overall_speedup = speedup(&all);
    println!(
        "{:<28} {:>11.2}x {:>11.2}x {:>12}",
        "arithmetic mean speed-up",
        epfl_speedup,
        paper::EPFL_MEAN_SPEEDUP,
        check(epfl_speedup, paper::EPFL_MEAN_SPEEDUP, true)
    );
    println!(
        "{:<28} {:>11.2}x {:>11.2}x {:>12}",
        "industrial mean speed-up",
        industrial_speedup,
        paper::INDUSTRIAL_MEAN_SPEEDUP,
        check(industrial_speedup, paper::INDUSTRIAL_MEAN_SPEEDUP, true)
    );
    println!(
        "{:<28} {:>11.2}x {:>11.2}x {:>12}",
        "overall mean speed-up",
        overall_speedup,
        paper::OVERALL_MEAN_SPEEDUP,
        check(overall_speedup, paper::OVERALL_MEAN_SPEEDUP, true)
    );
    println!(
        "{:<28} {:>+11.2}% {:>+11.2}% {:>12}",
        "arithmetic worst area loss",
        worst(&epfl_rows),
        paper::EPFL_WORST_AND_INCREASE,
        check(worst(&epfl_rows), paper::EPFL_WORST_AND_INCREASE, false)
    );
    println!(
        "{:<28} {:>+11.2}% {:>+11.2}% {:>12}",
        "industrial worst area loss",
        worst(&industrial_rows),
        paper::INDUSTRIAL_WORST_AND_INCREASE,
        check(
            worst(&industrial_rows),
            paper::INDUSTRIAL_WORST_AND_INCREASE,
            false
        )
    );
    println!();
    println!("The industrial acceptance criterion from the paper is a speed-up of at");
    println!("least 1.25x with an area degradation below 0.5 %.");
}
