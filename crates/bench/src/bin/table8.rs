//! Table VIII: classifier quality metrics on the industrial-like designs
//! (leave-one-out).

use elf_bench::{paper, print_quality_table, CachedSuite, HarnessOptions};

fn main() {
    let options = HarnessOptions::from_args();
    let suite = CachedSuite::new(options.industrial_circuits(), options.experiment_config(1));
    let rows = suite.quality_rows();
    print_quality_table(
        &format!(
            "Table VIII: ELF classifier quality on industrial circuits (size scale {})",
            options.industrial_scale
        ),
        &rows,
    );
    println!();
    println!(
        "Paper reference: recall {:.0} %-{:.0} %, accuracy 74 %-93 %.",
        paper::INDUSTRIAL_RECALL_RANGE.0 * 100.0,
        paper::INDUSTRIAL_RECALL_RANGE.1 * 100.0
    );
}
