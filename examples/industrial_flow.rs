//! Industrial-style flow: generate control-dominated netlists matched to the
//! paper's Table II profiles, train on most of them, and accelerate
//! optimization of the held-out design with a script-style [`Flow`] pipeline
//! mixing classifier-pruned and plain operators.  Also demonstrates AIGER
//! export and classifier persistence.
//!
//! Run with `cargo run --release --example industrial_flow`.
//!
//! [`Flow`]: elf::core::Flow

use elf::aig::aiger;
use elf::circuits::industrial::{generate_industrial, TABLE2_PROFILES};
use elf::core::{
    circuit_dataset, collect_labeled_cuts, cuts_to_arrays, ElfClassifier, ElfConfig, ElfRefactor,
    Flow,
};
use elf::nn::{Dataset, TrainConfig};
use elf::opt::{RefactorParams, ResubParams, RewriteParams};

fn main() {
    // Small-scale versions of the ten Table II designs (~1/500th of the
    // published gate counts) keep this example interactive.
    let scale = 0.002;
    let designs: Vec<_> = TABLE2_PROFILES
        .iter()
        .enumerate()
        .map(|(index, profile)| {
            (
                profile.name,
                generate_industrial(profile, scale, 1000 + index as u64),
            )
        })
        .collect();

    let params = RefactorParams::default();
    let held_out = 4; // "design 5", the most redundant profile

    // Train on every design except the held-out one.
    let mut training = Dataset::new();
    for (index, (_, aig)) in designs.iter().enumerate() {
        if index != held_out {
            training.extend_from(&circuit_dataset(aig, &params));
        }
    }
    println!(
        "training on {} cuts from {} designs",
        training.len(),
        designs.len() - 1
    );
    let (classifier, _) = ElfClassifier::fit(
        &training,
        &TrainConfig {
            epochs: 15,
            ..Default::default()
        },
        7,
    );

    // Persist and reload the classifier, as a deployment inside a synthesis
    // tool would.
    let serialized = classifier.to_text();
    let classifier = ElfClassifier::from_text(&serialized).expect("classifier round-trips");
    println!("serialized classifier: {} bytes", serialized.len());

    // Evaluate on the held-out design.
    let (name, target) = &designs[held_out];
    let cuts = collect_labeled_cuts(target, &params);
    let (features, labels) = cuts_to_arrays(&cuts);
    let confusion = classifier.evaluate(&features, &labels, true);
    println!(
        "{name}: recall {:.1}%, accuracy {:.1}% over {} cuts",
        confusion.recall() * 100.0,
        confusion.accuracy() * 100.0,
        confusion.total()
    );

    // Baseline: the plain ABC-style script `rf; rw; rs`.
    let mut baseline_aig = target.clone();
    let baseline = Flow::from_script("rf; rw; rs")
        .expect("valid script")
        .run(&mut baseline_aig);

    // Accelerated: the same pipeline with the refactor stage pruned by the
    // trained classifier.
    let elf = ElfRefactor::new(classifier, ElfConfig::default());
    let pruned_flow = Flow::new()
        .elf_refactor(elf)
        .rewrite(RewriteParams::default())
        .resub(ResubParams::default());
    let mut elf_aig = target.clone();
    let stats = pruned_flow.run(&mut elf_aig);

    println!(
        "baseline `rf; rw; rs`: {} -> {} ANDs in {:?}",
        baseline.ands_before, baseline.ands_after, baseline.runtime,
    );
    println!(
        "pruned pipeline:       {} -> {} ANDs in {:?}",
        stats.ands_before, stats.ands_after, stats.runtime,
    );
    for stage in &stats.stages {
        let pruned = stage
            .elf
            .as_ref()
            .map(|elf| format!(", {:.1}% pruned", elf.prune_rate() * 100.0))
            .unwrap_or_default();
        println!(
            "  {:<14} -> {:>6} ANDs ({} committed of {} cuts{pruned})",
            stage.name, stage.ands_after, stage.op.cuts_committed, stage.op.cuts_formed,
        );
    }

    // Export the optimized design as ASCII AIGER.
    let out_path = std::env::temp_dir().join("elf_industrial_design.aag");
    aiger::write_ascii_file(&elf_aig, &out_path).expect("write AIGER file");
    println!("optimized design written to {}", out_path.display());
}
