//! Industrial-style flow: generate control-dominated netlists matched to the
//! paper's Table II profiles, train on most of them, and accelerate
//! refactoring of the held-out design.  Also demonstrates AIGER export and
//! classifier persistence.
//!
//! Run with `cargo run --release --example industrial_flow`.

use elf::aig::aiger;
use elf::circuits::industrial::{generate_industrial, TABLE2_PROFILES};
use elf::core::{
    circuit_dataset, collect_labeled_cuts, cuts_to_arrays, ElfClassifier, ElfConfig, ElfRefactor,
};
use elf::nn::{Dataset, TrainConfig};
use elf::opt::{Refactor, RefactorParams};

fn main() {
    // Small-scale versions of the ten Table II designs (~1/500th of the
    // published gate counts) keep this example interactive.
    let scale = 0.002;
    let designs: Vec<_> = TABLE2_PROFILES
        .iter()
        .enumerate()
        .map(|(index, profile)| {
            (
                profile.name,
                generate_industrial(profile, scale, 1000 + index as u64),
            )
        })
        .collect();

    let params = RefactorParams::default();
    let held_out = 4; // "design 5", the most redundant profile

    // Train on every design except the held-out one.
    let mut training = Dataset::new();
    for (index, (_, aig)) in designs.iter().enumerate() {
        if index != held_out {
            training.extend_from(&circuit_dataset(aig, &params));
        }
    }
    println!(
        "training on {} cuts from {} designs",
        training.len(),
        designs.len() - 1
    );
    let (classifier, _) = ElfClassifier::fit(
        &training,
        &TrainConfig {
            epochs: 15,
            ..Default::default()
        },
        7,
    );

    // Persist and reload the classifier, as a deployment inside a synthesis
    // tool would.
    let serialized = classifier.to_text();
    let classifier = ElfClassifier::from_text(&serialized).expect("classifier round-trips");
    println!("serialized classifier: {} bytes", serialized.len());

    // Evaluate on the held-out design.
    let (name, target) = &designs[held_out];
    let cuts = collect_labeled_cuts(target, &params);
    let (features, labels) = cuts_to_arrays(&cuts);
    let confusion = classifier.evaluate(&features, &labels, true);
    println!(
        "{name}: recall {:.1}%, accuracy {:.1}% over {} cuts",
        confusion.recall() * 100.0,
        confusion.accuracy() * 100.0,
        confusion.total()
    );

    let mut baseline_aig = target.clone();
    let baseline = Refactor::new(params).run(&mut baseline_aig);
    let mut elf_aig = target.clone();
    let elf = ElfRefactor::new(classifier, ElfConfig::default());
    let stats = elf.run(&mut elf_aig);
    println!(
        "baseline: {} -> {} ANDs in {:?}; ELF: {} -> {} ANDs in {:?} ({:.1}% pruned)",
        target.num_reachable_ands(),
        baseline_aig.num_reachable_ands(),
        baseline.runtime,
        target.num_reachable_ands(),
        elf_aig.num_reachable_ands(),
        stats.total_time,
        stats.prune_rate() * 100.0,
    );

    // Export the optimized design as ASCII AIGER.
    let out_path = std::env::temp_dir().join("elf_industrial_design.aag");
    aiger::write_ascii_file(&elf_aig, &out_path).expect("write AIGER file");
    println!("optimized design written to {}", out_path.display());
}
