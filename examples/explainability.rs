//! Explainability of the ELF classifier: the feature study of Section IV-D.
//!
//! Trains the classifier on an arithmetic circuit, embeds the cut-feature
//! space with t-SNE (Figure 3) and attributes predictions to the six
//! features with exact Shapley values (Figure 4).
//!
//! Run with `cargo run --release --example explainability`.

use elf::aig::FEATURE_NAMES;
use elf::analysis::{shap_summary, tsne, TsneConfig};
use elf::circuits::epfl::{arithmetic_circuit, Scale};
use elf::core::{collect_labeled_cuts, cuts_to_dataset, ElfClassifier};
use elf::nn::TrainConfig;
use elf::opt::RefactorParams;

fn main() {
    let circuit = arithmetic_circuit("sqrt", Scale::Tiny);
    let params = RefactorParams::default();
    let cuts = collect_labeled_cuts(&circuit, &params);
    let data = cuts_to_dataset(&cuts);
    println!(
        "collected {} labelled cuts from `{}`",
        data.len(),
        circuit.name()
    );

    let (classifier, _) = ElfClassifier::fit(
        &data,
        &TrainConfig {
            epochs: 15,
            ..Default::default()
        },
        3,
    );

    // --- Figure 3: t-SNE of the feature space -------------------------------
    let sample: Vec<Vec<f64>> = cuts
        .iter()
        .take(400)
        .map(|c| c.features.to_array().iter().map(|&v| v as f64).collect())
        .collect();
    let embedding = tsne(
        &sample,
        &TsneConfig {
            iterations: 200,
            perplexity: 20.0,
            ..Default::default()
        },
    );
    let refactored = cuts.iter().take(400).filter(|c| c.committed).count();
    println!(
        "t-SNE embedded {} cuts ({} refactored); first points:",
        embedding.len(),
        refactored
    );
    for (point, cut) in embedding.iter().zip(cuts.iter()).take(5) {
        println!(
            "  ({:>8.3}, {:>8.3})  label={}",
            point[0], point[1], cut.committed
        );
    }

    // --- Figure 4: SHAP values ----------------------------------------------
    let background: Vec<Vec<f32>> = cuts
        .iter()
        .step_by((cuts.len() / 32).max(1))
        .take(32)
        .map(|c| c.features.to_array().to_vec())
        .collect();
    let instances: Vec<Vec<f32>> = cuts
        .iter()
        .take(64)
        .map(|c| c.features.to_array().to_vec())
        .collect();
    let model = |rows: &[Vec<f32>]| -> Vec<f32> {
        let arrays: Vec<[f32; 6]> = rows
            .iter()
            .map(|r| [r[0], r[1], r[2], r[3], r[4], r[5]])
            .collect();
        classifier.predict_batch(&arrays)
    };
    let summary = shap_summary(&model, &instances, &background);
    println!();
    println!("mean |SHAP| per feature (importance):");
    let mut ranked: Vec<(usize, f64)> = summary.mean_abs.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite SHAP values"));
    for (feature, importance) in ranked {
        println!(
            "  {:<20} {:>10.5}  (mean signed {:+.5})",
            FEATURE_NAMES[feature], importance, summary.mean[feature]
        );
    }
}
