//! Quickstart: train the ELF classifier on one circuit and use it to prune
//! refactoring of another.
//!
//! Run with `cargo run --release --example quickstart`.

use elf::aig::check_equivalence;
use elf::circuits::epfl::{arithmetic_circuit, Scale};
use elf::core::{circuit_dataset, ElfClassifier, ElfConfig, ElfRefactor};
use elf::nn::TrainConfig;
use elf::opt::{Refactor, RefactorParams};

fn main() {
    // 1. Generate a training circuit and label its cuts by running the
    //    baseline refactor operator in recording mode.
    let trainer = arithmetic_circuit("square", Scale::Tiny);
    let params = RefactorParams::default();
    let data = circuit_dataset(&trainer, &params);
    let (negatives, positives) = data.class_counts();
    println!(
        "training data: {} cuts ({} refactored, {} not) from `{}`",
        data.len(),
        positives,
        negatives,
        trainer.name()
    );

    // 2. Train the 325-parameter classifier.
    let train_config = TrainConfig {
        epochs: 15,
        ..Default::default()
    };
    let (classifier, report) = ElfClassifier::fit(&data, &train_config, 42);
    println!(
        "trained for {} epochs, validation recall {:.1}%, accuracy {:.1}%",
        report.epochs_run,
        report.validation_metrics.recall() * 100.0,
        report.validation_metrics.accuracy() * 100.0
    );
    // The stratified validation split guarantees positives land in the
    // validation slice, so a healthy run must achieve non-zero recall.
    assert!(
        report.validation_metrics.recall() > 0.0,
        "validation recall collapsed to zero: {:?}",
        report.validation_metrics
    );

    // 3. Apply ELF to an unseen circuit and compare with the baseline.
    let target = arithmetic_circuit("multiplier", Scale::Tiny);
    let golden = target.clone();

    let mut baseline_aig = target.clone();
    let baseline = Refactor::new(params).run(&mut baseline_aig);

    let mut elf_aig = target.clone();
    let elf = ElfRefactor::new(classifier, ElfConfig::default());
    let stats = elf.run(&mut elf_aig);

    println!();
    println!("target circuit `{}`:", target.name());
    println!(
        "  baseline refactor: {:>6} -> {:>6} AND gates in {:?}",
        target.num_reachable_ands(),
        baseline_aig.num_reachable_ands(),
        baseline.runtime
    );
    println!(
        "  ELF:               {:>6} -> {:>6} AND gates in {:?} (pruned {:.1}% of cuts)",
        target.num_reachable_ands(),
        elf_aig.num_reachable_ands(),
        stats.total_time,
        stats.prune_rate() * 100.0
    );

    // 4. ELF never changes circuit functionality.
    let equivalence = check_equivalence(&golden, &elf_aig, 32, 2025);
    println!("  functional equivalence after ELF: {equivalence:?}");
}
