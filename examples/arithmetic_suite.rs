//! Reproduce the paper's EPFL-arithmetic experiment in miniature: for every
//! arithmetic circuit, train the classifier on the other five (leave-one-out)
//! and compare the baseline refactor against ELF.
//!
//! Run with `cargo run --release --example arithmetic_suite`.

use elf::circuits::epfl::{arithmetic_suite, Scale};
use elf::core::experiment::{run_suite, ExperimentConfig};
use elf::core::BenchCircuit;
use elf::nn::TrainConfig;

fn main() {
    // Tiny versions of the six arithmetic circuits keep this example fast;
    // the bench harness (`cargo run -p elf-bench --bin table3`) uses the
    // larger default scale.
    let circuits: Vec<BenchCircuit> = arithmetic_suite(Scale::Tiny)
        .into_iter()
        .map(|(name, aig)| BenchCircuit::new(name, aig))
        .collect();

    let config = ExperimentConfig {
        train: TrainConfig {
            epochs: 10,
            ..Default::default()
        },
        ..Default::default()
    };

    println!("running leave-one-out over {} circuits...", circuits.len());
    let suite = run_suite(&circuits, &config);

    println!();
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8}",
        "design", "nodes", "base(ms)", "elf(ms)", "base-AND", "elf-AND", "speedup", "ΔAND%"
    );
    for row in &suite.comparisons {
        println!(
            "{:<12} {:>8} {:>10.2} {:>10.2} {:>9} {:>9} {:>7.2}x {:>+8.2}",
            row.name,
            row.nodes_before,
            row.baseline_runtime.as_secs_f64() * 1e3,
            row.elf_runtime.as_secs_f64() * 1e3,
            row.baseline_ands,
            row.elf_ands,
            row.speedup(),
            row.and_difference_percent(),
        );
    }

    println!();
    println!(
        "{:<12} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "design", "recall", "accuracy", "TP", "TN", "FP", "FN"
    );
    for row in &suite.qualities {
        let cm = row.confusion;
        println!(
            "{:<12} {:>7.1}% {:>8.1}% {:>8} {:>8} {:>8} {:>8}",
            row.name,
            cm.recall() * 100.0,
            cm.accuracy() * 100.0,
            cm.true_positives,
            cm.true_negatives,
            cm.false_positives,
            cm.false_negatives,
        );
    }

    println!();
    println!(
        "mean speed-up {:.2}x, mean recall {:.1}%, mean accuracy {:.1}%, worst area loss {:+.2}%",
        suite.mean_speedup(),
        suite.mean_recall() * 100.0,
        suite.mean_accuracy() * 100.0,
        suite.worst_and_difference_percent(),
    );
}
