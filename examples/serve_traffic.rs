//! Traffic-serving demo: a long-lived [`ElfService`] fires N client threads
//! submitting M circuits each, then proves every served result is
//! **node-for-node identical** to the offline
//! [`Flow::pruned_from_script`] path — the serving layer's determinism
//! guarantee, checked end to end.
//!
//! Run with `cargo run --release --example serve_traffic`.  The shard count
//! follows `ELF_THREADS` (like every parallel knob in the workspace).
//!
//! [`ElfService`]: elf::serve::ElfService
//! [`Flow::pruned_from_script`]: elf::core::Flow::pruned_from_script

use elf::aig::{aiger, Aig};
use elf::circuits::epfl::{arithmetic_circuit, Scale};
use elf::circuits::scripted_circuit;
use elf::core::{circuit_dataset, ElfClassifier, Flow};
use elf::nn::TrainConfig;
use elf::opt::RefactorParams;
use elf::serve::{ElfService, ServeConfig};

const CLIENTS: usize = 3;
const CIRCUITS_PER_CLIENT: usize = 6;

/// The traffic mix: small arithmetic blocks plus scripted random circuits,
/// each paired with an ABC-style flow script.
fn workload() -> Vec<(String, Aig, &'static str)> {
    let scripts = ["rf; rw; rs", "rf; rs", "rw; rf"];
    let mut jobs = Vec::new();
    for (index, name) in ["sqrt", "multiplier", "square"].iter().enumerate() {
        jobs.push((
            (*name).to_string(),
            arithmetic_circuit(name, Scale::Tiny),
            scripts[index % scripts.len()],
        ));
    }
    while jobs.len() < CLIENTS * CIRCUITS_PER_CLIENT {
        let salt = jobs.len();
        let gates: Vec<(u8, usize, usize, usize)> = (0..24 + (salt % 4) * 8)
            .map(|i| ((i + salt) as u8, 3 * i + salt, 5 * i + 1, 7 * i))
            .collect();
        jobs.push((
            format!("scripted-{salt}"),
            scripted_circuit(4 + salt % 4, &gates),
            scripts[salt % scripts.len()],
        ));
    }
    jobs
}

fn main() {
    // Train once at startup: the service owns this classifier for its
    // whole lifetime and amortizes it over every request.
    let trainer = arithmetic_circuit("square", Scale::Tiny);
    let data = circuit_dataset(&trainer, &RefactorParams::default());
    let (classifier, _) = ElfClassifier::fit(
        &data,
        &TrainConfig {
            epochs: 5,
            ..Default::default()
        },
        7,
    );

    let config = ServeConfig::default();
    let service = ElfService::start(classifier.clone(), config);
    println!(
        "service up: {} shard(s), max_batch {} rows, max_wait {} ticks",
        config.shards.num_threads(),
        config.max_batch,
        config.max_wait
    );

    let jobs = workload();
    println!(
        "firing {CLIENTS} clients x {CIRCUITS_PER_CLIENT} circuits = {} jobs",
        jobs.len()
    );

    // Each client thread owns a private handle: submit a burst, then drain.
    let mut served: Vec<Option<(Aig, usize)>> = vec![None; jobs.len()];
    std::thread::scope(|scope| {
        let threads: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let mut handle = service.handle();
                let jobs = &jobs;
                scope.spawn(move || {
                    let mine: Vec<usize> = (client..jobs.len()).step_by(CLIENTS).collect();
                    let mut ids = Vec::new();
                    for &index in &mine {
                        let (_, aig, script) = &jobs[index];
                        ids.push(handle.submit(aig.clone(), script).expect("submit"));
                    }
                    let mut results = Vec::new();
                    while let Some(response) = handle.recv() {
                        let position = ids
                            .iter()
                            .position(|id| *id == response.job_id)
                            .expect("own job");
                        results.push((
                            mine[position],
                            response.aig,
                            response.stats.max_batch_occupancy,
                        ));
                    }
                    results
                })
            })
            .collect();
        for thread in threads {
            for (index, aig, occupancy) in thread.join().expect("client thread") {
                served[index] = Some((aig, occupancy));
            }
        }
    });

    // The proof: every served AIG equals the offline pruned flow node for
    // node.  Both writers canonicalize identically, so byte-equal ASCII
    // AIGER text *is* node-for-node equality.
    let mut max_occupancy = 0;
    for ((name, source, script), served) in jobs.iter().zip(&served) {
        let (served_aig, occupancy) = served.as_ref().expect("every job served");
        let mut offline = source.clone();
        Flow::pruned_from_script(script, &classifier, service.options())
            .expect("script parses")
            .run(&mut offline);
        assert_eq!(
            aiger::to_ascii(served_aig),
            aiger::to_ascii(&offline),
            "{name}: served result diverged from the offline flow"
        );
        max_occupancy = max_occupancy.max(*occupancy);
        println!(
            "  {name:<14} `{script}`: {:>4} -> {:>4} ANDs (batch occupancy up to {occupancy} rows)",
            source.num_reachable_ands(),
            served_aig.num_reachable_ands(),
        );
    }

    // The scrape-endpoint view of the same run: every counter, gauge and
    // latency histogram the service recorded, in Prometheus text format.
    println!();
    println!("--- metrics_text() at shutdown ---");
    print!("{}", service.metrics_text());
    println!("--- end metrics ---");

    let stats = service.shutdown();
    println!(
        "all {} served results are node-for-node identical to the offline `Flow::pruned_from_script` path",
        jobs.len()
    );
    println!(
        "service counters: {} jobs, {} inference batches ({} coalesced >1 job), mean occupancy {:.1} rows, peak {} rows",
        stats.jobs_served,
        stats.inference_batches,
        stats.coalesced_batches,
        stats.mean_batch_occupancy(),
        stats.max_batch_occupancy
    );

    // When tracing is on (`ELF_TRACE=1`), export the whole run as Chrome
    // `trace_event` JSON, and round-trip it through the bundled parser to
    // prove the spans nest — the CI smoke gate for the trace pipeline.
    if elf::obs::trace::enabled() {
        let json = elf::obs::trace::export_chrome_json();
        let events = elf::obs::chrome::parse_trace(&json).expect("trace JSON parses");
        let spans = elf::obs::chrome::validate_nesting(&events).expect("trace spans nest");
        let path = std::path::Path::new("target").join("serve_traffic_trace.json");
        std::fs::write(&path, &json).expect("write trace file");
        println!(
            "trace: {spans} spans exported to {} (load it in chrome://tracing)",
            path.display()
        );
    }
}
