//! # elf
//!
//! Facade crate of the ELF reproduction: **E**fficient **L**ogic synthesis by
//! pruning redundancy in re**F**actoring (Tsaras et al., DAC 2025).
//!
//! ELF observes that the ABC `refactor` operator wastes ~98 % of its time
//! resynthesizing cuts that never improve, and prunes those cuts with a
//! 325-parameter classifier over six structural cut features, obtaining a
//! multi-x speed-up at negligible area cost.  This workspace re-builds the
//! whole stack from scratch in Rust:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`aig`] (`elf-aig`) | And-Inverter Graph, structural hashing, MFFC, simulation, AIGER I/O, reconvergence-driven cuts and cut features |
//! | [`sop`] (`elf-sop`) | Truth tables, irredundant SOP (Minato–Morreale), algebraic factoring |
//! | [`opt`] (`elf-opt`) | Refactor, rewrite and resubstitution behind the unified `AigOperator` / `PrunableOperator` traits with a shared `OpStats` core |
//! | [`nn`] (`elf-nn`) | Minimal MLP framework (Adam, cosine warm restarts, MixUp, stratified splits, metrics) |
//! | [`par`] (`elf-par`) | Deterministic std-threads parallel engine (scoped pool, chunked queue, order-preserving gather) |
//! | [`core`] (`elf-core`) | The ELF classifier, the generic pruned operator `Elf<O>`, script-style `Flow` pipelines and the experiment protocol |
//! | [`serve`] (`elf-serve`) | Long-lived batching `ElfService`: bounded admission with load-shedding policies, work-stealing shard workers, versioned hot-swap `ModelRegistry`, micro-batched inference, channel request/response API |
//! | [`cec`] (`elf-cec`) | SAT-based combinational equivalence checking: a zero-dependency CDCL solver, miter construction, fraig-style simulation-guided SAT sweeping — the correctness gate behind `core::VerifyMode` |
//! | [`obs`] (`elf-obs`) | Zero-dependency observability: lock-free counters/gauges/log-bucketed latency histograms with a Prometheus text scrape, plus `ELF_TRACE`-gated tracing spans exported as Chrome `trace_event` JSON |
//! | [`circuits`] (`elf-circuits`) | EPFL-style arithmetic, industrial-like and synthetic workload generators |
//! | [`analysis`] (`elf-analysis`) | t-SNE, exact Shapley values, PCA |
//!
//! The operator layer is a small type algebra: every operator implements
//! `opt::AigOperator` (uniform `run` / per-node `apply_node`, stats that
//! convert into `opt::OpStats`), pruning-capable operators additionally
//! implement `opt::PrunableOperator` (feature collection, recording,
//! filtered execution), `core::Elf<O>` wraps any of them with a trained
//! classifier (`core::ElfRefactor` = `Elf<Refactor>` is the paper's
//! operator), and `core::Flow` composes plain and pruned stages into
//! ABC-script-style pipelines.
//!
//! # Examples
//!
//! Accelerate refactoring of a freshly generated multiplier:
//!
//! ```
//! use elf::circuits::epfl::{arithmetic_circuit, Scale};
//! use elf::core::{circuit_dataset, ElfClassifier, ElfConfig, ElfRefactor};
//! use elf::nn::TrainConfig;
//! use elf::opt::RefactorParams;
//!
//! // Train on a small squarer, prune refactoring of a small multiplier.
//! let trainer = arithmetic_circuit("square", Scale::Tiny);
//! let data = circuit_dataset(&trainer, &RefactorParams::default());
//! let (classifier, _) = ElfClassifier::fit(
//!     &data,
//!     &TrainConfig { epochs: 3, ..Default::default() },
//!     7,
//! );
//!
//! let mut target = arithmetic_circuit("multiplier", Scale::Tiny);
//! let elf = ElfRefactor::new(classifier, ElfConfig::default());
//! let stats = elf.run(&mut target);
//! assert!(stats.prune_rate() >= 0.0);
//! ```
//!
//! Compose a script-style pipeline, optionally mixing in pruned stages:
//!
//! ```
//! use elf::circuits::epfl::{arithmetic_circuit, Scale};
//! use elf::core::Flow;
//! use elf::opt::{RefactorParams, ResubParams, RewriteParams};
//!
//! let mut aig = arithmetic_circuit("sqrt", Scale::Tiny);
//! let before = aig.num_reachable_ands();
//!
//! // `rf; rw; rs`, ABC-script style...
//! let stats = Flow::from_script("rf; rw; rs").unwrap().run(&mut aig);
//! assert_eq!(stats.ands_before, before);
//! assert!(stats.ands_after <= before);
//!
//! // ...or explicitly, with per-stage parameters.
//! let flow = Flow::new()
//!     .refactor(RefactorParams::default())
//!     .rewrite(RewriteParams::default())
//!     .resub(ResubParams::default());
//! assert_eq!(flow.stage_names(), vec!["refactor", "rewrite", "resub"]);
//! ```
//!
//! Serve circuits from a long-lived [`serve::ElfService`] — a fixed shard of
//! worker threads behind a **bounded** admission queue
//! ([`serve::ServeConfig::queue_bound`], with a block/reject/timeout
//! [`serve::AdmissionPolicy`] on overload that always hands the circuit
//! back), sharing classifiers through a versioned hot-swap
//! [`serve::ModelRegistry`] ([`serve::ServiceHandle::submit_with`] selects a
//! version per request), with the inference work of concurrent jobs
//! coalesced into micro-batches — one forward pass per model version, all
//! weights behind `Arc` so submitting allocates zero model bytes.  Results
//! are per-job deterministic: node-for-node identical to the offline
//! [`core::Flow::pruned_from_script`] path with the job's pinned version,
//! for any shard count, batch knobs, admission policy, registry activity or
//! client interleaving:
//!
//! ```
//! use elf::circuits::epfl::{arithmetic_circuit, Scale};
//! use elf::core::{ElfClassifier, Flow};
//! use elf::nn::{Mlp, Normalizer};
//! use elf::par::Parallelism;
//! use elf::serve::{ElfService, ServeConfig};
//!
//! let classifier = ElfClassifier::from_parts(
//!     Normalizer::from_stats(vec![2.0; 6], vec![1.0; 6]),
//!     Mlp::paper_architecture(5),
//!     0.5,
//! );
//! let config = ServeConfig { shards: Parallelism::threads(2), ..Default::default() };
//! let service = ElfService::start(classifier.clone(), config);
//!
//! // Fire a small burst through one client handle and collect it back.
//! let mut handle = service.handle();
//! let source = arithmetic_circuit("square", Scale::Tiny);
//! let id = handle.submit(source.clone(), "rf; rw").unwrap();
//! let response = handle.recv().expect("one job outstanding");
//! assert_eq!(response.job_id, id);
//!
//! // The served result equals the offline pruned flow, node for node.
//! let mut offline = source.clone();
//! Flow::pruned_from_script("rf; rw", &classifier, service.options())
//!     .unwrap()
//!     .run(&mut offline);
//! assert_eq!(
//!     elf::aig::aiger::to_ascii(&response.aig),
//!     elf::aig::aiger::to_ascii(&offline),
//! );
//! assert_eq!(service.shutdown().jobs_served, 1);
//! ```
//!
//! Prove (by SAT, not simulation) that an optimization preserved the
//! circuit's function, either standalone through [`cec`] or as a flow-level
//! gate through [`core::VerifyMode`]:
//!
//! ```
//! use elf::cec::check_equivalence;
//! use elf::circuits::epfl::{arithmetic_circuit, Scale};
//! use elf::core::{Flow, VerifyMode};
//!
//! let mut aig = arithmetic_circuit("square", Scale::Tiny);
//! let golden = aig.clone();
//!
//! let stats = Flow::from_script("rf; rw").unwrap()
//!     .with_verify(VerifyMode::Final)
//!     .run(&mut aig);
//! assert!(stats.verify.unwrap().proved());
//!
//! // The standalone checker agrees (and would hand back a concrete
//! // counterexample input vector if it did not).
//! assert!(check_equivalence(&golden, &aig).is_proved());
//! ```

pub use elf_aig as aig;
pub use elf_analysis as analysis;
pub use elf_cec as cec;
pub use elf_circuits as circuits;
pub use elf_core as core;
pub use elf_nn as nn;
pub use elf_obs as obs;
pub use elf_opt as opt;
pub use elf_par as par;
pub use elf_serve as serve;
pub use elf_sop as sop;
