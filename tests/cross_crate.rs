//! Cross-crate integration tests: AIGER persistence of generated workloads,
//! classifier persistence, and interactions between the optimization
//! operators.

use elf::aig::{aiger, check_equivalence, Aig, CutParams};
use elf::circuits::epfl::{arithmetic_circuit, Scale};
use elf::circuits::generate_random_netlist;
use elf::core::{circuit_dataset, ElfClassifier, ElfConfig, ElfRefactor};
use elf::nn::TrainConfig;
use elf::opt::{Refactor, RefactorParams, Resubstitution, Rewrite};

#[test]
fn generated_circuits_round_trip_through_aiger() {
    for name in ["multiplier", "square", "log2"] {
        let circuit = arithmetic_circuit(name, Scale::Tiny);
        let text = aiger::to_ascii(&circuit);
        let parsed = aiger::from_ascii(&text).expect("valid AIGER");
        assert_eq!(parsed.num_inputs(), circuit.num_inputs());
        assert_eq!(parsed.num_outputs(), circuit.num_outputs());
        assert!(
            check_equivalence(&circuit, &parsed, 32, 9).holds(),
            "{name}: AIGER round trip changed the function"
        );
    }
}

#[test]
fn refactored_circuit_round_trips_through_aiger() {
    let mut circuit = arithmetic_circuit("square", Scale::Tiny);
    Refactor::new(RefactorParams::default()).run(&mut circuit);
    let text = aiger::to_ascii(&circuit);
    let parsed = aiger::from_ascii(&text).expect("valid AIGER");
    assert!(check_equivalence(&circuit, &parsed, 32, 10).holds());
}

#[test]
fn operator_pipeline_is_sound() {
    // refactor -> rewrite -> resub, each preserving functionality and never
    // increasing the node count.
    let mut aig = generate_random_netlist("pipeline", 48, 16, 1500, 30, 0.1, 77);
    let golden = aig.clone();
    let start = aig.num_reachable_ands();
    Refactor::new(RefactorParams::default()).run(&mut aig);
    let after_refactor = aig.num_reachable_ands();
    Rewrite::default().run(&mut aig);
    let after_rewrite = aig.num_reachable_ands();
    Resubstitution::default().run(&mut aig);
    let after_resub = aig.num_reachable_ands();
    assert!(after_refactor <= start);
    assert!(after_rewrite <= after_refactor);
    assert!(after_resub <= after_rewrite);
    assert!(check_equivalence(&golden, &aig, 32, 21).holds());
    assert!(aig.check_invariants().is_empty());
}

#[test]
fn classifier_survives_serialization_in_the_flow() {
    let circuit = arithmetic_circuit("sqrt", Scale::Tiny);
    let data = circuit_dataset(&circuit, &RefactorParams::default());
    let (classifier, _) = ElfClassifier::fit(
        &data,
        &TrainConfig {
            epochs: 5,
            ..Default::default()
        },
        17,
    );
    let restored = ElfClassifier::from_text(&classifier.to_text()).expect("round trip");

    let mut a = circuit.clone();
    let mut b = circuit.clone();
    let stats_a = ElfRefactor::new(classifier, ElfConfig::default()).run(&mut a);
    let stats_b = ElfRefactor::new(restored, ElfConfig::default()).run(&mut b);
    assert_eq!(stats_a.pruned, stats_b.pruned);
    assert_eq!(a.num_reachable_ands(), b.num_reachable_ands());
}

#[test]
fn cut_features_are_stable_across_clones() {
    let mut circuit = arithmetic_circuit("multiplier", Scale::Tiny);
    let mut clone = circuit.clone();
    let params = CutParams::default();
    let nodes: Vec<_> = circuit.and_ids().take(50).collect();
    for node in nodes {
        let a = circuit.reconvergence_cut(node, &params);
        let b = clone.reconvergence_cut(node, &params);
        assert_eq!(circuit.cut_features(&a), clone.cut_features(&b));
    }
}

#[test]
fn empty_and_trivial_graphs_are_handled_by_every_operator() {
    let mut empty = Aig::new();
    assert_eq!(Refactor::default().run(&mut empty).cuts_formed, 0);
    assert_eq!(Rewrite::default().run(&mut empty).nodes_visited, 0);
    assert_eq!(Resubstitution::default().run(&mut empty).nodes_visited, 0);

    let mut trivial = Aig::new();
    let a = trivial.add_input();
    let b = trivial.add_input();
    let f = trivial.and(a, b);
    trivial.add_output(f);
    assert_eq!(Refactor::default().run(&mut trivial).cuts_committed, 0);
    assert_eq!(trivial.num_ands(), 1);
}
