//! End-to-end integration tests spanning every crate: workload generation,
//! baseline refactoring, classifier training, ELF pruning, and quality
//! verification.

use elf::aig::check_equivalence;
use elf::circuits::epfl::{arithmetic_circuit, arithmetic_suite, Scale};
use elf::circuits::industrial::{generate_industrial, IndustrialProfile};
use elf::core::experiment::{
    circuit_stats, compare_on_circuit, compare_with_operator, quality_on_circuit,
    train_leave_one_out_with, ExperimentConfig,
};
use elf::core::{
    circuit_dataset, leave_one_out_dataset, train_leave_one_out, BenchCircuit, Elf, ElfClassifier,
    ElfConfig, ElfOptions, ElfRefactor, Flow,
};
use elf::nn::TrainConfig;
use elf::opt::{Refactor, RefactorParams, ResubParams, Rewrite, RewriteParams};

fn quick_experiment_config() -> ExperimentConfig {
    ExperimentConfig {
        train: TrainConfig {
            epochs: 8,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn tiny_suite() -> Vec<BenchCircuit> {
    arithmetic_suite(Scale::Tiny)
        .into_iter()
        .map(|(name, aig)| BenchCircuit::new(name, aig))
        .collect()
}

#[test]
fn refactor_preserves_functionality_on_arithmetic_circuits() {
    for (name, aig) in arithmetic_suite(Scale::Tiny) {
        let golden = aig.clone();
        let mut optimized = aig;
        let stats = Refactor::new(RefactorParams::default()).run(&mut optimized);
        assert!(
            optimized.check_invariants().is_empty(),
            "{name}: {:?}",
            optimized.check_invariants()
        );
        assert!(
            check_equivalence(&golden, &optimized, 32, 11).holds(),
            "{name}: refactor changed the function"
        );
        assert!(
            stats.cuts_formed > 0,
            "{name}: no cuts were formed by refactor"
        );
    }
}

#[test]
fn redundancy_statistics_match_the_papers_premise() {
    // The paper's core observation (Fig. 1): the overwhelming majority of
    // cuts fail to be refactored.
    let mut total_cuts = 0usize;
    let mut total_commits = 0usize;
    for (_, aig) in arithmetic_suite(Scale::Tiny) {
        let mut copy = aig;
        let stats = Refactor::new(RefactorParams::default()).run(&mut copy);
        total_cuts += stats.cuts_formed;
        total_commits += stats.cuts_committed;
    }
    let commit_rate = total_commits as f64 / total_cuts as f64;
    assert!(
        commit_rate < 0.25,
        "commit rate {commit_rate} is too high for the pruning premise to hold"
    );
}

#[test]
fn leave_one_out_flow_preserves_function_and_prunes() {
    let circuits = tiny_suite();
    let config = quick_experiment_config();
    // Hold out the multiplier (index of "multiplier" in the suite).
    let held_out = circuits
        .iter()
        .position(|c| c.name == "multiplier")
        .expect("multiplier exists");
    let classifier = train_leave_one_out(&circuits, held_out, &config);

    let golden = circuits[held_out].aig.clone();
    let mut optimized = circuits[held_out].aig.clone();
    let elf = ElfRefactor::new(classifier, config.elf);
    let stats = elf.run(&mut optimized);

    assert!(optimized.check_invariants().is_empty());
    assert!(check_equivalence(&golden, &optimized, 32, 5).holds());
    // The classifier must actually prune something on an unseen circuit.
    assert!(stats.pruned > 0, "classifier pruned nothing");
    assert!(optimized.num_reachable_ands() <= golden.num_reachable_ands());
}

#[test]
fn comparison_and_quality_rows_are_consistent() {
    let circuits = tiny_suite();
    let config = quick_experiment_config();
    let classifier = train_leave_one_out(&circuits, 0, &config);
    let row = compare_on_circuit(&circuits[0], &classifier, &config);
    assert_eq!(row.name, circuits[0].name);
    assert!(row.baseline_ands <= row.nodes_before);
    assert!(row.elf_ands <= row.nodes_before);

    let quality = quality_on_circuit(&circuits[0], &classifier, &config);
    let stats = circuit_stats(&circuits[0], &config.elf.refactor);
    assert_eq!(quality.confusion.total(), stats.cuts);
    // True positives + false negatives equals the number of refactorable cuts.
    assert_eq!(
        quality.confusion.true_positives + quality.confusion.false_negatives,
        stats.refactored
    );
}

#[test]
fn elf_quality_loss_is_bounded_when_recall_is_perfect() {
    // With threshold 0 the classifier keeps everything: quality must match
    // the baseline exactly, which bounds the quality loss attributable to
    // the flow itself (as opposed to classification errors).
    let circuit = arithmetic_circuit("square", Scale::Tiny);
    let data = circuit_dataset(&circuit, &RefactorParams::default());
    let (mut classifier, _) = ElfClassifier::fit(
        &data,
        &TrainConfig {
            epochs: 3,
            ..Default::default()
        },
        5,
    );
    classifier.set_threshold(0.0);

    let mut baseline_aig = circuit.clone();
    Refactor::new(RefactorParams::default()).run(&mut baseline_aig);
    let mut elf_aig = circuit.clone();
    ElfRefactor::new(classifier, ElfConfig::default()).run(&mut elf_aig);
    assert_eq!(
        baseline_aig.num_reachable_ands(),
        elf_aig.num_reachable_ands()
    );
}

#[test]
fn industrial_designs_work_through_the_whole_pipeline() {
    let profile = IndustrialProfile {
        name: "integration",
        inputs: 96,
        outputs: 32,
        target_ands: 3000,
        target_depth: 45,
        redundancy: 0.08,
    };
    let designs: Vec<BenchCircuit> = (0..3)
        .map(|i| {
            BenchCircuit::new(
                format!("design {i}"),
                generate_industrial(&profile, 1.0, 50 + i),
            )
        })
        .collect();
    let params = RefactorParams::default();
    let data = leave_one_out_dataset(&designs, 0, &params);
    assert!(data.len() > 100);
    let (classifier, _) = ElfClassifier::fit(
        &data,
        &TrainConfig {
            epochs: 8,
            ..Default::default()
        },
        11,
    );
    let golden = designs[0].aig.clone();
    let mut optimized = designs[0].aig.clone();
    let stats = ElfRefactor::new(classifier, ElfConfig::default()).run(&mut optimized);
    assert!(stats.pruned + stats.kept > 0);
    assert!(check_equivalence(&golden, &optimized, 24, 3).holds());
    assert!(optimized.check_invariants().is_empty());
}

#[test]
fn rewrite_classifier_trains_and_prunes_through_shared_machinery() {
    // The conclusion's extension target: Elf<Rewrite> end-to-end via the same
    // leave-one-out dataset machinery the refactor classifier uses.
    let circuits = tiny_suite();
    let operator = Rewrite::new(RewriteParams::default());
    let held_out = circuits
        .iter()
        .position(|c| c.name == "multiplier")
        .expect("multiplier exists");
    let train = TrainConfig {
        epochs: 8,
        ..Default::default()
    };
    let classifier = train_leave_one_out_with(&operator, &circuits, held_out, &train, 0xE1F);

    let golden = circuits[held_out].aig.clone();
    let mut optimized = golden.clone();
    let elf = Elf::with_operator(classifier, operator.clone(), ElfOptions::default());
    let stats = elf.run(&mut optimized);
    assert_eq!(stats.pruned + stats.kept, stats.op.cuts_formed);
    assert!(stats.pruned > 0, "rewrite classifier pruned nothing");
    assert!(optimized.check_invariants().is_empty());
    assert!(check_equivalence(&golden, &optimized, 32, 6).holds());

    // The generic comparison row machinery works for the new operator too.
    let row = compare_with_operator(&circuits[held_out], &operator, &elf, 1);
    assert_eq!(row.nodes_before, golden.num_reachable_ands());
    assert!(row.elf_ands <= row.nodes_before);
}

#[test]
fn flow_pipeline_mixes_plain_and_pruned_stages() {
    let circuits = tiny_suite();
    let config = quick_experiment_config();
    let held_out = 2;
    let classifier = train_leave_one_out(&circuits, held_out, &config);

    let golden = circuits[held_out].aig.clone();
    let mut optimized = golden.clone();
    let flow = Flow::new()
        .elf_refactor(ElfRefactor::new(classifier, config.elf))
        .rewrite(RewriteParams::default())
        .resub(ResubParams::default());
    assert_eq!(flow.stage_names(), vec!["elf-refactor", "rewrite", "resub"]);
    let stats = flow.run(&mut optimized);
    assert_eq!(stats.stages.len(), 3);
    assert!(stats.stages[0].elf.is_some(), "first stage is pruned");
    assert!(stats.stages[1].elf.is_none(), "second stage is plain");
    assert!(stats.ands_after <= stats.ands_before);
    assert_eq!(
        stats.total_gain(),
        golden.num_reachable_ands() as i64 - optimized.num_reachable_ands() as i64
    );
    assert!(optimized.check_invariants().is_empty());
    assert!(check_equivalence(&golden, &optimized, 32, 7).holds());
}

#[test]
fn double_application_never_hurts_area() {
    let circuits = tiny_suite();
    let config = ExperimentConfig {
        applications: 2,
        ..quick_experiment_config()
    };
    let classifier = train_leave_one_out(&circuits, 1, &config);
    let single_config = ExperimentConfig {
        applications: 1,
        ..config
    };
    let twice = compare_on_circuit(&circuits[1], &classifier, &config);
    let once = compare_on_circuit(&circuits[1], &classifier, &single_config);
    assert!(twice.elf_ands <= once.elf_ands);
    assert_eq!(twice.elf_passes.len(), 2);
}
