//! Vendored stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The workspace must build on machines with no access to a crates.io
//! registry, so this crate re-implements exactly the API surface the ELF
//! workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator (the real
//!   `StdRng` is ChaCha12; the workspace only requires a fixed, seedable,
//!   statistically reasonable stream, not a cryptographic one);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`], [`Rng::gen_range`] (integer and float ranges, half-open
//!   and inclusive) and [`Rng::gen_bool`].
//!
//! All generation is deterministic in the seed — there is no entropy source
//! anywhere in this crate, which keeps tests and experiments reproducible.

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over all values for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`, which may be a half-open (`a..b`) or
    /// inclusive (`a..=b`) range of any primitive integer or float type.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit resolution).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits to a uniform `f32` in `[0, 1)` (24-bit resolution).
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Types sampleable from the standard distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Range types from which a `T` can be drawn uniformly via
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from `rng`, consuming the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniformly samples an integer from `[low, high)` (`span = high - low`,
/// computed in 128-bit arithmetic so every primitive width fits).
fn sample_int_span<R: RngCore + ?Sized>(rng: &mut R, low: i128, span: u128) -> i128 {
    debug_assert!(span > 0);
    // Modulo reduction has bias at most span / 2^64, which is far below
    // anything observable for the workloads in this workspace.
    low + (rng.next_u64() as u128 % span) as i128
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                sample_int_span(rng, self.start as i128, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                sample_int_span(rng, start as i128, span) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * $unit(rng.next_u64())
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                start + (end - start) * $unit(rng.next_u64())
            }
        }
    )*};
}

impl_range_float!(f32 => unit_f32, f64 => unit_f64);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded by SplitMix64.
    ///
    /// Unlike the crates.io `StdRng`, this generator is documented to be
    /// deterministic and stable across releases of this workspace — test
    /// expectations may rely on its stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut seeder = state;
            let mut next = || {
                // SplitMix64 (Steele, Lea & Flood 2014).
                seeder = seeder.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seeder;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna 2018).
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&j));
            let x = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&x));
            let y = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }
}
