//! Vendored stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The workspace must build without registry access, so this crate provides
//! the subset of the criterion API that the `elf-bench` benches use:
//! [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical engine it runs a short warm-up, then a
//! fixed number of timed samples, and prints the mean, minimum and maximum
//! per-iteration wall time.  That is plenty for the relative comparisons the
//! ELF benches make (baseline vs pruned operator, batched vs per-node
//! classification); absolute numbers should be taken from `--release` runs
//! of the `elf-bench` binaries.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&id.into(), self.sample_size, f);
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, f);
        self
    }

    /// Ends the group (printing nothing further; provided for API parity).
    pub fn finish(self) {}
}

/// How expensive the per-iteration input of [`Bencher::iter_batched`] is;
/// accepted for API parity and otherwise ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: criterion would amortize setup over many iterations.
    SmallInput,
    /// Large inputs: criterion would re-set-up frequently.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to every benchmark closure; mirrors `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {id:<40} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    println!(
        "  {id:<40} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
        bencher.samples.len()
    );
}

/// Declares a benchmark-group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
