//! Vendored stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The workspace must build without registry access, so this crate
//! re-implements the subset of proptest that the ELF test suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! * [`strategy::any`], integer-range strategies, tuple strategies,
//!   [`collection::vec`] and [`prop_oneof!`].
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics immediately with the case
//!   number and the generated inputs, which — together with the fixed
//!   seeding below — is enough to reproduce and debug a failure.
//! * **Deterministic seeding.** Every test case derives its RNG seed from
//!   the test-function name and the case index (no entropy, no
//!   wall-clock), so suites pass or fail identically on every run.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The proptest prelude: everything the `proptest!` suites need in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests.
///
/// Each `fn name(arg in strategy, ..) { body }` item becomes a zero-argument
/// test that draws `config.cases` input tuples from the strategies and runs
/// the body on each.  A panicking body fails the test immediately, printing
/// the case index and the generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::case_rng(stringify!($name), case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&$strategy, &mut rng);
                    )+
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body }),
                    );
                    if let ::std::result::Result::Err(payload) = result {
                        ::std::eprintln!(
                            "proptest case {case}/{} of `{}` failed with inputs:",
                            config.cases,
                            stringify!($name),
                        );
                        $(
                            ::std::eprintln!(
                                "  {} = {:?}",
                                stringify!($arg),
                                $arg,
                            );
                        )+
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

/// Picks uniformly between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
