//! The [`Strategy`] trait and the combinators used by the ELF test suites.

use core::fmt;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of a given type.
///
/// Unlike real proptest, a strategy here generates values directly (no value
/// trees, no shrinking); see the crate docs for the rationale.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Generates an intermediate value, then draws from the strategy that
    /// `flat_map` builds from it.
    fn prop_flat_map<S, F>(self, flat_map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            source: self,
            flat_map,
        }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

impl<S: fmt::Debug, F> fmt::Debug for Map<S, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Map").field("source", &self.source).finish()
    }
}

/// The [`Strategy::prop_flat_map`] combinator.
pub struct FlatMap<S, F> {
    source: S,
    flat_map: F,
}

impl<S, F, O> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;

    fn generate(&self, rng: &mut StdRng) -> O::Value {
        (self.flat_map)(self.source.generate(rng)).generate(rng)
    }
}

impl<S: fmt::Debug, F> fmt::Debug for FlatMap<S, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlatMap")
            .field("source", &self.source)
            .finish()
    }
}

/// Uniform choice between several boxed strategies (see [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
#[derive(Debug)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let index = rng.gen_range(0..self.options.len());
        self.options[index].generate(rng)
    }
}

/// Types with a canonical strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value from `rng`.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

impl<T> fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Any")
    }
}

/// The canonical strategy for `T`: uniform over all values.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
