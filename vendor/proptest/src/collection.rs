//! Collection strategies (`prop::collection::vec`).

use core::fmt;
use core::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A length specification for [`vec()`]: an exact length or a range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max_exclusive: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "vec strategy: empty size range");
        SizeRange {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(
            range.start() <= range.end(),
            "vec strategy: empty size range"
        );
        SizeRange {
            min: *range.start(),
            max_exclusive: range.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

impl<S: fmt::Debug> fmt::Debug for VecStrategy<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VecStrategy")
            .field("element", &self.element)
            .field("size", &self.size)
            .finish()
    }
}

/// Generates vectors whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
