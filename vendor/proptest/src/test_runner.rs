//! Test configuration and the deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Derives the RNG for one test case from the test name and case index.
///
/// The seed is a hash of both, so every test draws an independent stream,
/// every case within a test differs, and reruns are bit-for-bit identical
/// (no entropy or wall-clock input anywhere).
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the name, then mix in the case index.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn case_rngs_are_deterministic_and_distinct() {
        let mut a = case_rng("some_test", 0);
        let mut b = case_rng("some_test", 0);
        let mut c = case_rng("some_test", 1);
        let mut d = case_rng("other_test", 0);
        let (va, vb, vc, vd) = (
            a.gen::<u64>(),
            b.gen::<u64>(),
            c.gen::<u64>(),
            d.gen::<u64>(),
        );
        assert_eq!(va, vb);
        assert_ne!(va, vc);
        assert_ne!(va, vd);
    }
}
